(* The semantic analyzer, tested differentially: every proof it emits
   — a cross-group containment claim (SV401/SV402) or a [Denied_empty]
   admission verdict — is cross-checked against instance-level
   evaluation on sample and seeded random documents.  A single refuted
   claim is a soundness bug; the expected count is 0. *)

module A = Sxpath.Ast
module D = Sanalysis.Diagnostic
module Semantic = Sanalysis.Semantic
module Spec = Secview.Spec
module View = Secview.View
module C = Secview.Containment
module Pipeline = Secview.Pipeline
module R = Sdtd.Regex

let parse = Sxpath.Parse.of_string
let qual = Sxpath.Parse.qual_of_string
let dtd = Workload.Hospital.dtd

(* Variable-free policy variants over the hospital DTD, so the
   differential oracle can evaluate every derived σ-path without an
   environment.  [nurse_a]/[nurse_b] are the same policy written in
   different annotation orders; [junior] is [nurse_a] minus the
   medication grant; [chief] is the identity policy. *)
let trial_depts = qual "*/patient/treatment/trial"

let nurse_annots =
  [
    (("hospital", "dept"), Spec.Cond trial_depts);
    (("dept", "clinicalTrial"), Spec.No);
    (("clinicalTrial", "patientInfo"), Spec.Yes);
    (("treatment", "trial"), Spec.No);
    (("treatment", "regular"), Spec.No);
    (("trial", "bill"), Spec.Yes);
    (("regular", "bill"), Spec.Yes);
    (("regular", "medication"), Spec.Yes);
  ]

let nurse_a = Spec.make dtd nurse_annots
let nurse_b = Spec.make dtd (List.rev nurse_annots)

let junior =
  Spec.make dtd
    (List.map
       (function
         | ("regular", "medication"), _ -> (("regular", "medication"), Spec.No)
         | edge -> edge)
       nurse_annots)

let chief = Spec.make dtd []

let fleet_views specs =
  List.map (fun (name, spec) -> (name, Secview.Derive.derive spec)) specs

let all_specs =
  [ ("nurse-a", nurse_a); ("nurse-b", nurse_b); ("junior", junior);
    ("chief", chief) ]

let codes ds = List.map (fun d -> d.D.code) ds

(* --- fleet verdicts ------------------------------------------------- *)

let relation_between specs l r =
  let views = fleet_views specs in
  let cmp =
    Semantic.compare_views dtd (l, List.assoc l views) (r, List.assoc r views)
  in
  cmp.Semantic.cmp_relation

let test_fleet_verdicts () =
  Alcotest.(check string) "reordered annotations are equivalent" "equivalent"
    (Semantic.relation_label
       (relation_between all_specs "nurse-a" "nurse-b"));
  Alcotest.(check string) "junior is subsumed by nurse" "subsumed"
    (Semantic.relation_label (relation_between all_specs "junior" "nurse-a"));
  Alcotest.(check string) "nurse subsumes junior" "subsumes"
    (Semantic.relation_label (relation_between all_specs "nurse-a" "junior"))

let test_fleet_diagnostics () =
  let cmps = Semantic.fleet dtd (fleet_views all_specs) in
  Alcotest.(check int) "all unordered pairs" 6 (List.length cmps);
  let ds = Semantic.fleet_diagnostics cmps in
  Alcotest.(check bool) "SV401 for the reordered twin" true
    (List.mem "SV401" (codes ds));
  Alcotest.(check bool) "SV402 for the role-hierarchy edge" true
    (List.mem "SV402" (codes ds));
  Alcotest.(check bool) "no SV4xx errors, only warnings/info" false
    (D.has_errors ds)

let test_recursive_view_unknown () =
  let view = Workload.Xmark.view () in
  Alcotest.(check bool) "recursive view DTD has no finite region" true
    (Semantic.region_paths view = None);
  match
    (Semantic.compare_views Workload.Xmark.dtd ("a", view) ("b", view))
      .Semantic.cmp_relation
  with
  | Semantic.Unknown _ -> ()
  | other ->
    Alcotest.failf "expected Unknown, got %s" (Semantic.relation_label other)

(* --- differential check: every containment claim, refuted? ---------- *)

let test_claims_unrefuted () =
  let cmps = Semantic.fleet dtd (fleet_views all_specs) in
  let claims = List.concat_map (fun c -> c.Semantic.cmp_claims) cmps in
  Alcotest.(check bool) "verdicts rest on claims" true
    (List.length claims > 0);
  let refuted =
    List.filter
      (fun cl ->
        C.refute ~samples:12 dtd cl.Semantic.claim_lhs cl.Semantic.claim_rhs
          ~at:cl.Semantic.claim_at
        <> None)
      claims
  in
  Alcotest.(check int)
    (Printf.sprintf "0 of %d claims refuted" (List.length claims))
    0 (List.length refuted)

(* --- differential check: Denied_empty means empty everywhere -------- *)

(* View queries against the nurse view DTD.  The analyzer must deny
   the first group and pass the second; every denied query is then
   evaluated through the full pipeline on sample + random documents
   and must return the empty node set — the reply the server's
   admission fast path sends without evaluating. *)
let denied_queries =
  [
    "//clinicalTrial";         (* hidden element type *)
    "//test";                  (* hidden descendant *)
    "//trial";                 (* hidden choice branch *)
    "//medication/name";       (* dead step under the view DTD *)
    "//patient[specialty]";    (* qualifier no patient can satisfy *)
    "//nonexistent";           (* not an element type at all *)
  ]

let eval_queries = [ "//patient/name"; "//bill"; "//staff//wardNo" ]

let test_admission_verdicts () =
  let view = Secview.Derive.derive (Workload.Hospital.nurse_spec dtd) in
  let vdtd = View.dtd view in
  List.iter
    (fun q ->
      match Semantic.admission vdtd (parse q) with
      | Pipeline.Denied_empty _ -> ()
      | _ -> Alcotest.failf "%s: expected Denied_empty" q)
    denied_queries;
  List.iter
    (fun q ->
      match Semantic.admission vdtd (parse q) with
      | Pipeline.Needs_eval -> ()
      | _ -> Alcotest.failf "%s: expected Needs_eval" q)
    eval_queries;
  (* ε is answerable from the schema alone *)
  Alcotest.(check bool) "ε is trivial" true
    (Semantic.admission vdtd A.Eps = Pipeline.Trivial)

let test_denied_is_empty_on_instances () =
  let t =
    Pipeline.Session.create
      (Pipeline.Service.create dtd
         ~groups:[ ("nurse", Workload.Hospital.nurse_spec dtd) ])
  in
  let env = Workload.Hospital.nurse_env "w1" in
  let docs =
    Workload.Hospital.sample_document ()
    :: List.map
         (fun seed -> Workload.Hospital.generated_document ~seed ())
         [ 1; 2; 3; 4; 5 ]
  in
  List.iter
    (fun q ->
      let p = parse q in
      (match Pipeline.Session.classify t ~group:"nurse" p with
      | Ok (Pipeline.Denied_empty _) -> ()
      | _ -> Alcotest.failf "%s: pipeline must classify Denied_empty" q);
      List.iteri
        (fun i doc ->
          match Pipeline.Session.answer t ~group:"nurse" ~env p doc with
          | Ok [] -> ()
          | Ok nodes ->
            Alcotest.failf "%s: %d nodes on document %d — verdict refuted" q
              (List.length nodes) i
          | Error e -> Alcotest.failf "%s: %s" q (Secview.Error.to_string e))
        docs)
    denied_queries

(* --- classify cache and counters ------------------------------------ *)

let test_admission_counters () =
  let t =
    Pipeline.Session.create
      (Pipeline.Service.create dtd
         ~groups:[ ("nurse", Workload.Hospital.nurse_spec dtd) ])
  in
  let classify q =
    match Pipeline.Session.classify t ~group:"nurse" (parse q) with
    | Ok a -> a
    | Error e -> Alcotest.failf "classify: %s" (Secview.Error.to_string e)
  in
  ignore (classify "//test");
  ignore (classify "//test");
  (* cached verdict, counted again *)
  ignore (classify "//patient/name");
  let s : Pipeline.stats = Pipeline.Session.stats_of t ~group:"nurse" in
  Alcotest.(check int) "denied counted per call" 2 s.denied;
  Alcotest.(check int) "eval counted" 1 s.eval;
  Alcotest.(check int) "nothing trivial yet" 0 s.trivial;
  match Pipeline.Session.classify t ~group:"ghost" (parse "//name") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown group must be an error"

(* --- plan-level branch pruning -------------------------------------- *)

let test_compile_prune () =
  let b1 = parse "//name" in
  let b2 = parse "//medication" in
  let u = A.union b1 b2 in
  let doc = Workload.Hospital.sample_document () in
  let index = Sxml.Index.build doc in
  let run c = List.map (fun n -> n.Sxml.Tree.id) (Splan.Exec.run c ~index doc) in
  match (Splan.Compile.compile u, Splan.Compile.compile ~prune:[ b2 ] u) with
  | Ok full, Ok pruned ->
    Alcotest.(check int) "nothing pruned without a prune list" 0
      (Splan.Compile.pruned full);
    Alcotest.(check int) "one branch pruned" 1 (Splan.Compile.pruned pruned);
    (* pruning is only sound when the caller proved the branch empty;
       this asserts the mechanism, so the oracle is the surviving
       branch, not the full union *)
    (match Splan.Compile.compile b1 with
    | Ok only_b1 ->
      Alcotest.(check (list int)) "pruned union ≡ surviving branch"
        (run only_b1) (run pruned)
    | Error e -> Alcotest.failf "compile //name: %s" e)
  | Error e, _ | _, Error e -> Alcotest.failf "compile: %s" e

let test_prune_all_branches () =
  (* both branches proven empty ⇒ the whole query is: the plan
     degenerates to Nothing and answers the empty set *)
  let b1 = parse "//name" in
  let b2 = parse "//medication" in
  let u = A.union b1 b2 in
  let doc = Workload.Hospital.sample_document () in
  let index = Sxml.Index.build doc in
  match Splan.Compile.compile ~prune:[ b1; b2 ] u with
  | Ok c ->
    Alcotest.(check int) "both pruned" 2 (Splan.Compile.pruned c);
    Alcotest.(check (list int)) "empty answer" []
      (List.map (fun n -> n.Sxml.Tree.id) (Splan.Exec.run c ~index doc))
  | Error e -> Alcotest.failf "compile: %s" e

(* --- leakage (SV410) ------------------------------------------------- *)

let test_leakage_dead_element () =
  (* Expose clinicalTrial only where test has a bill child — but test
     is #PCDATA, so the qualifier is unsatisfiable: the view DTD
     advertises a clinicalTrial subtree no instance ever populates. *)
  let spec =
    Spec.make dtd
      [ (("dept", "clinicalTrial"), Spec.Cond (qual "test/bill")) ]
  in
  let view = Secview.Derive.derive spec in
  let ds = Semantic.check_leakage ~dtd view in
  let dead =
    List.filter_map
      (fun d ->
        match d.D.subject with
        | D.Element e when d.D.code = "SV410" -> Some e
        | _ -> None)
      ds
  in
  Alcotest.(check (list string)) "topmost dead type only"
    [ "clinicalTrial" ] dead

let test_leakage_clean_policies () =
  List.iter
    (fun (name, spec) ->
      let view = Secview.Derive.derive spec in
      Alcotest.(check (list string)) (name ^ " leaks nothing") []
        (codes (Semantic.check_leakage ~dtd view)))
    all_specs

let test_leakage_ghost_attribute () =
  (* A view DTD that advertises an attribute its source type does not
     carry: every instance of the document DTD must omit it. *)
  let base = Sdtd.Dtd.create ~root:"r" [ ("r", R.Star (R.Elt "a")); ("a", R.Str) ] in
  let vdtd = Sdtd.Dtd.with_attributes base "a" [ "ghost" ] in
  let view =
    View.make ~dtd:vdtd ~sigma:[ (("r", "a"), A.Label "a") ] ()
  in
  let ds = Semantic.check_leakage ~dtd:base view in
  Alcotest.(check (list string)) "ghost attribute flagged" [ "SV410" ]
    (codes ds);
  (* and admission denies the attribute-only query over that view *)
  match Semantic.admission vdtd (parse "//a/@ghost") with
  | Pipeline.Denied_empty w ->
    Alcotest.(check bool) "witness mentions attribute values" true
      (String.length w > 0)
  | _ -> Alcotest.fail "attribute-only query must be denied"

let () =
  Alcotest.run "analysis"
    [
      ( "fleet",
        [
          Alcotest.test_case "relations" `Quick test_fleet_verdicts;
          Alcotest.test_case "diagnostics" `Quick test_fleet_diagnostics;
          Alcotest.test_case "recursive → unknown" `Quick
            test_recursive_view_unknown;
        ] );
      ( "differential",
        [
          Alcotest.test_case "claims unrefuted" `Slow test_claims_unrefuted;
          Alcotest.test_case "denied ⇒ empty on instances" `Quick
            test_denied_is_empty_on_instances;
        ] );
      ( "admission",
        [
          Alcotest.test_case "verdicts" `Quick test_admission_verdicts;
          Alcotest.test_case "counters & cache" `Quick test_admission_counters;
        ] );
      ( "plan-prune",
        [
          Alcotest.test_case "prunes dead branch" `Quick test_compile_prune;
          Alcotest.test_case "prunes all branches" `Quick
            test_prune_all_branches;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "dead element (topmost)" `Quick
            test_leakage_dead_element;
          Alcotest.test_case "clean policies" `Quick
            test_leakage_clean_policies;
          Alcotest.test_case "ghost attribute" `Quick
            test_leakage_ghost_attribute;
        ] );
    ]
