(* The attribute extension ("attributes ... can be easily
   incorporated", Section 2): declarations, policies on attributes,
   derivation, materialization, rewriting and DTD-aware decisions. *)

module A = Sxpath.Ast
module R = Sdtd.Regex
module Spec = Secview.Spec
module View = Secview.View
module Derive = Secview.Derive
module Materialize = Secview.Materialize
module Access = Secview.Access

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let e l = R.Elt l
let parse = Sxpath.Parse.of_string
let path_t = Alcotest.testable Sxpath.Print.pp Sxpath.Simplify.equivalent_syntax

(* A small records DTD with attributes: record has a public @id and a
   sensitive @owner; note has a @lang. *)
let dtd =
  Sdtd.Dtd.create
    ~attlist:[ ("record", [ "id"; "owner" ]); ("note", [ "lang" ]) ]
    ~root:"db"
    [
      ("db", R.Star (e "record"));
      ("record", R.Seq [ e "note"; e "secret" ]);
      ("note", R.Str);
      ("secret", R.Str);
    ]

let spec =
  Spec.make dtd
    [ (("record", "@owner"), Spec.No); (("record", "secret"), Spec.No) ]

let doc () =
  Sxml.Tree.(
    of_spec
      (elem "db"
         [
           elem "record"
             ~attrs:[ ("id", "r1"); ("owner", "alice") ]
             [
               elem "note" ~attrs:[ ("lang", "en") ] [ text "hello" ];
               elem "secret" [ text "s1" ];
             ];
           elem "record"
             ~attrs:[ ("id", "r2"); ("owner", "bob") ]
             [
               elem "note" [ text "salut" ];
               elem "secret" [ text "s2" ];
             ];
         ]))

let test_dtd_declarations () =
  Alcotest.(check (list string)) "record attributes" [ "id"; "owner" ]
    (Sdtd.Dtd.attributes dtd "record");
  Alcotest.(check (list string)) "none for db" [] (Sdtd.Dtd.attributes dtd "db")

let test_dtd_attlist_roundtrip () =
  let printed = Sdtd.Dtd.to_string dtd in
  let reparsed = Sdtd.Parse.of_string printed in
  Alcotest.(check bool) "roundtrips with attributes" true
    (Sdtd.Dtd.equal dtd reparsed);
  Alcotest.(check (list string)) "attributes survive" [ "id"; "owner" ]
    (Sdtd.Dtd.attributes reparsed "record")

let test_parse_attlist_forms () =
  let d =
    Sdtd.Parse.of_string
      {|<!ELEMENT r EMPTY>
        <!ATTLIST r a CDATA #REQUIRED
                    b (yes | no) "yes"
                    c CDATA #FIXED "k">|}
  in
  Alcotest.(check (list string)) "all three attribute forms"
    [ "a"; "b"; "c" ]
    (List.sort compare (Sdtd.Dtd.attributes d "r"))

let test_validate_checks_attributes () =
  Alcotest.(check bool) "declared attributes accepted" true
    (Sdtd.Validate.conforms dtd (doc ()));
  let bad =
    Sxml.Tree.(
      of_spec
        (elem "db"
           [
             elem "record" ~attrs:[ ("zz", "1") ]
               [ elem "note" [ text "x" ]; elem "secret" [ text "y" ] ];
           ]))
  in
  Alcotest.(check bool) "undeclared attribute rejected" true
    (List.exists
       (fun v ->
         let m = v.Sdtd.Validate.message in
         String.length m > 9 && String.sub m 0 9 = "attribute")
       (Sdtd.Validate.check dtd bad))

let test_spec_attribute_edges () =
  Alcotest.(check bool) "undeclared attribute rejected" true
    (match Spec.make dtd [ (("record", "@zz"), Spec.No) ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "attribute on wrong element rejected" true
    (match Spec.make dtd [ (("note", "@owner"), Spec.No) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_accessible_attributes () =
  let d = doc () in
  let records = eval (parse "record") d in
  List.iter
    (fun r ->
      Alcotest.(check (list (pair string string)))
        "only @id visible"
        [ ("id", Sxml.Tree.attr r "id" |> Option.get) ]
        (Access.accessible_attributes spec d r))
    records

let test_explicit_y_attribute_on_hidden_element () =
  (* @owner explicitly granted even though the record is hidden *)
  let spec' =
    Spec.make dtd
      [ (("db", "record"), Spec.No); (("record", "@owner"), Spec.Yes) ]
  in
  let d = doc () in
  let r = List.hd (eval (parse "record") d) in
  Alcotest.(check (list string)) "owner exposed, id hidden with the element"
    [ "owner" ]
    (List.map fst (Access.accessible_attributes spec' d r))

let test_view_dtd_attributes () =
  let view = Derive.derive spec in
  Alcotest.(check (list string)) "view record keeps only @id" [ "id" ]
    (Sdtd.Dtd.attributes (View.dtd view) "record");
  Alcotest.(check (list string)) "note keeps @lang" [ "lang" ]
    (Sdtd.Dtd.attributes (View.dtd view) "note")

let test_materialize_attributes () =
  let view = Derive.derive spec in
  let vt = Materialize.materialize ~spec ~view (doc ()) in
  let tree = Materialize.to_tree vt in
  let records = eval (parse "record") tree in
  Alcotest.(check (list (option string))) "ids kept"
    [ Some "r1"; Some "r2" ]
    (List.map (fun r -> Sxml.Tree.attr r "id") records);
  Alcotest.(check (list (option string))) "owners stripped" [ None; None ]
    (List.map (fun r -> Sxml.Tree.attr r "owner") records);
  Alcotest.(check bool) "materialization conforms (attribute check incl.)"
    true
    (Sdtd.Validate.conforms (View.dtd view) tree)

let test_rewrite_attribute_qualifiers () =
  let view = Derive.derive spec in
  (* visible attribute: passes through *)
  Alcotest.check path_t "visible @id"
    (parse "record[@id = \"r1\"]")
    (Secview.Rewrite.rewrite view (parse "record[@id = \"r1\"]"));
  (* hidden attribute: the qualifier can never hold in the view *)
  Alcotest.check path_t "hidden @owner" A.Empty
    (Secview.Rewrite.rewrite view (parse "record[@owner]"));
  (* negated hidden attribute is vacuously true *)
  Alcotest.check path_t "not(@owner)" (parse "record")
    (Secview.Rewrite.rewrite view (parse "record[not(@owner)]"))

let test_rewrite_attribute_evaluation () =
  let view = Derive.derive spec in
  let d = doc () in
  let pt = Secview.Rewrite.rewrite view (parse "record[@id = \"r2\"]/note") in
  Alcotest.(check (list string)) "selects through the visible attribute"
    [ "salut" ]
    (List.map Sxml.Tree.string_value (eval pt d));
  (* a query over the materialized view agrees *)
  let vt = Materialize.materialize ~spec ~view d in
  let tree = Materialize.to_tree vt in
  Alcotest.(check (list string)) "same through the view"
    [ "salut" ]
    (List.map Sxml.Tree.string_value
       (eval (parse "record[@id = \"r2\"]/note") tree))

let test_optimize_attribute_decisions () =
  (* [@zz] is undeclared on record: decided false from the DTD *)
  Alcotest.check path_t "undeclared attribute kills the qualifier" A.Empty
    (Secview.Optimize.optimize dtd (parse "//record[@zz]"));
  Alcotest.(check bool) "declared attribute stays undecided" true
    (Secview.Optimize.optimize dtd (parse "//record[@id]") <> A.Empty)

let test_gen_attributes () =
  let config =
    {
      Sdtd.Gen.default_config with
      attr_for =
        (fun _el attr _rng -> if attr = "id" then Some "generated" else None);
    }
  in
  let d = Sdtd.Gen.generate ~config dtd in
  Alcotest.(check bool) "generated documents conform" true
    (Sdtd.Validate.conforms dtd d);
  let records = eval (parse "record") d in
  List.iter
    (fun r ->
      Alcotest.(check (option string)) "id generated" (Some "generated")
        (Sxml.Tree.attr r "id");
      Alcotest.(check (option string)) "owner omitted" None
        (Sxml.Tree.attr r "owner"))
    records

let test_unfold_keeps_attributes () =
  let rec_dtd =
    Sdtd.Dtd.create
      ~attlist:[ ("a", [ "depth" ]) ]
      ~root:"a"
      [ ("a", R.choice [ e "a"; R.Epsilon ]) ]
  in
  let u = Sdtd.Unfold.unfold rec_dtd ~height:3 in
  Alcotest.(check (list string)) "levelled copies keep attributes"
    [ "depth" ]
    (Sdtd.Dtd.attributes u "a~2")

let () =
  Alcotest.run "attributes"
    [
      ( "dtd",
        [
          Alcotest.test_case "declarations" `Quick test_dtd_declarations;
          Alcotest.test_case "attlist roundtrip" `Quick
            test_dtd_attlist_roundtrip;
          Alcotest.test_case "attlist forms" `Quick test_parse_attlist_forms;
          Alcotest.test_case "validation" `Quick
            test_validate_checks_attributes;
          Alcotest.test_case "unfold keeps attributes" `Quick
            test_unfold_keeps_attributes;
        ] );
      ( "policy",
        [
          Alcotest.test_case "spec edges" `Quick test_spec_attribute_edges;
          Alcotest.test_case "accessible attributes" `Quick
            test_accessible_attributes;
          Alcotest.test_case "explicit Y on hidden element" `Quick
            test_explicit_y_attribute_on_hidden_element;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "view DTD attributes" `Quick
            test_view_dtd_attributes;
          Alcotest.test_case "materialization" `Quick
            test_materialize_attributes;
          Alcotest.test_case "rewriting qualifiers" `Quick
            test_rewrite_attribute_qualifiers;
          Alcotest.test_case "rewritten evaluation" `Quick
            test_rewrite_attribute_evaluation;
          Alcotest.test_case "optimizer decisions" `Quick
            test_optimize_attribute_decisions;
          Alcotest.test_case "generation" `Quick test_gen_attributes;
        ] );
    ]
