(* Telemetry export: the OpenMetrics exposition, Chrome trace JSON,
   plan EXPLAIN operator counters, slow-query records, and the
   server's HTTP scrape endpoint. *)

module Metrics = Sobs.Metrics
module Tracer = Sobs.Tracer
module Clock = Sobs.Clock
module Export = Sobs.Export
module Json = Sobs.Json
module Runtime = Sobs.Runtime
module Audit_log = Sobs.Audit_log
module Server = Sserver.Server
module Pipeline = Secview.Pipeline

(* ---- OpenMetrics --------------------------------------------------- *)

let test_sanitize () =
  Alcotest.(check string)
    "dots become underscores" "secview_server_latency_ms_user"
    (Export.sanitize "server.latency_ms.user");
  Alcotest.(check string)
    "already clean" "secview_requests" (Export.sanitize "requests")

let test_openmetrics_golden () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 m "req";
  Metrics.set_gauge m "queue.depth" 2.;
  List.iter (Metrics.observe ~buckets:[| 1.; 5. |] m "lat") [ 0.5; 2.; 10. ];
  let expected =
    "# TYPE secview_req counter\n" ^ "secview_req_total 3\n"
    ^ "# TYPE secview_queue_depth gauge\n" ^ "secview_queue_depth 2\n"
    ^ "# TYPE secview_lat histogram\n"
    ^ "secview_lat_bucket{le=\"1\"} 1\n"
    ^ "secview_lat_bucket{le=\"5\"} 2\n"
    ^ "secview_lat_bucket{le=\"+Inf\"} 3\n"
    ^ "secview_lat_sum 12.5\n" ^ "secview_lat_count 3\n" ^ "# EOF\n"
  in
  Alcotest.(check string) "exposition" expected (Export.openmetrics m)

(* Cumulative bucket counts must never decrease, the +Inf bucket must
   equal _count — the invariants Prometheus clients rely on. *)
let check_histograms_monotone body =
  let lines = String.split_on_char '\n' body in
  let bucket_count line =
    match String.index_opt line '}' with
    | Some i when String.length line > i + 1 ->
      int_of_string_opt
        (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
    | _ -> None
  in
  let histograms = Hashtbl.create 4 in
  List.iter
    (fun line ->
      match String.index_opt line '{' with
      | Some i when
          String.length line > 7
          && String.sub line (i - 7) 7 = "_bucket" -> (
        let name = String.sub line 0 (i - 7) in
        match bucket_count line with
        | Some n ->
          let prev = try Hashtbl.find histograms name with Not_found -> [] in
          Hashtbl.replace histograms name (n :: prev)
        | None -> Alcotest.failf "unparseable bucket line: %s" line)
      | _ -> ())
    lines;
  Alcotest.(check bool)
    "at least one histogram" true
    (Hashtbl.length histograms > 0);
  Hashtbl.iter
    (fun name counts ->
      let counts = List.rev counts in
      let rec monotone = function
        | a :: (b :: _ as rest) ->
          if a > b then
            Alcotest.failf "%s buckets not cumulative: %d > %d" name a b;
          monotone rest
        | _ -> ()
      in
      monotone counts;
      (* the last bucket is +Inf and must equal the _count line *)
      let count_line =
        List.find_opt (String.starts_with ~prefix:(name ^ "_count ")) lines
      in
      match (count_line, List.rev counts) with
      | Some l, last :: _ ->
        let n =
          int_of_string
            (String.trim
               (String.sub l
                  (String.length name + 7)
                  (String.length l - String.length name - 7)))
        in
        Alcotest.(check int) (name ^ " +Inf = count") n last
      | _ -> Alcotest.failf "%s has no _count line" name)
    histograms

let test_openmetrics_monotone () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat") [ 0.3; 7.; 80.; 999.; 123456. ];
  List.iter (Metrics.observe m "visited") [ 1.; 1.; 2.; 40. ];
  let body = Export.openmetrics m in
  check_histograms_monotone body;
  Alcotest.(check bool)
    "terminated" true
    (String.length body >= 6
    && String.sub body (String.length body - 6) 6 = "# EOF\n")

(* ---- Chrome trace -------------------------------------------------- *)

let test_chrome_trace_roundtrip () =
  let tr = Tracer.create ~clock:(Clock.fake ()) () in
  Tracer.install tr;
  Secview.Trace.span "answer" (fun () ->
      Secview.Trace.span "eval" (fun () -> ()));
  Tracer.uninstall ();
  let spans = Tracer.spans tr in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  match Json.of_string (Json.to_string (Export.chrome_trace spans)) with
  | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  | Ok j -> (
    (match Json.member "displayTimeUnit" j with
    | Some (Json.String "ms") -> ()
    | _ -> Alcotest.fail "displayTimeUnit missing");
    match Json.member "traceEvents" j with
    | Some (Json.List evs) ->
      Alcotest.(check int) "two events" 2 (List.length evs);
      List.iter
        (fun ev ->
          (match Json.member "ph" ev with
          | Some (Json.String "X") -> ()
          | _ -> Alcotest.fail "ph must be X (complete event)");
          (match Json.member "cat" ev with
          | Some (Json.String "secview") -> ()
          | _ -> Alcotest.fail "cat must be secview");
          let num name =
            match Json.member name ev with
            | Some (Json.Float f) -> f
            | Some (Json.Int i) -> float_of_int i
            | _ -> Alcotest.failf "%s missing" name
          in
          ignore (num "ts");
          (* fake clock: 1ms per read, so every span lasts >= 1000us *)
          Alcotest.(check bool) "positive duration" true (num "dur" >= 1000.))
        evs;
      (* both spans belong to one request: same trace_id, outer first *)
      let arg name ev =
        match Json.member "args" ev with
        | Some a -> (
          match Json.member name a with
          | Some (Json.Int i) -> i
          | _ -> Alcotest.failf "args.%s missing" name)
        | None -> Alcotest.fail "args missing"
      in
      let outer = List.hd evs and inner = List.nth evs 1 in
      Alcotest.(check int)
        "same trace" (arg "trace_id" outer) (arg "trace_id" inner);
      Alcotest.(check int) "outer depth" 0 (arg "depth" outer);
      Alcotest.(check int) "inner depth" 1 (arg "depth" inner)
    | _ -> Alcotest.fail "traceEvents missing")

(* GC pauses render as their own complete events on pid 2, one tid per
   domain, so they appear as separate tracks under the request rows. *)
let test_chrome_trace_gc_tracks () =
  let gc =
    [
      { Runtime.domain = 0; kind = Runtime.Minor; start_ns = 1_000L;
        stop_ns = 3_000L };
      { Runtime.domain = 1; kind = Runtime.Major_slice; start_ns = 2_000L;
        stop_ns = 2_500L };
    ]
  in
  match Json.of_string (Json.to_string (Export.chrome_trace ~gc [])) with
  | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  | Ok j -> (
    match Json.member "traceEvents" j with
    | Some (Json.List [ minor; major ]) ->
      let str name ev =
        match Json.member name ev with
        | Some (Json.String s) -> s
        | _ -> Alcotest.failf "%s missing" name
      in
      let int name ev =
        match Json.member name ev with
        | Some (Json.Int i) -> i
        | _ -> Alcotest.failf "%s missing" name
      in
      Alcotest.(check string) "minor name" "gc:minor" (str "name" minor);
      Alcotest.(check string) "major name" "gc:major_slice"
        (str "name" major);
      Alcotest.(check string) "gc category" "gc" (str "cat" minor);
      (* pid 2 keeps GC rows in their own process group, tid = domain *)
      Alcotest.(check int) "gc pid" 2 (int "pid" minor);
      Alcotest.(check int) "minor tid is its domain" 0 (int "tid" minor);
      Alcotest.(check int) "major tid is its domain" 1 (int "tid" major);
      let num name ev =
        match Json.member name ev with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> Alcotest.failf "%s missing" name
      in
      (* ns -> us *)
      Alcotest.(check (float 1e-9)) "minor ts us" 1. (num "ts" minor);
      Alcotest.(check (float 1e-9)) "minor dur us" 2. (num "dur" minor);
      Alcotest.(check (float 1e-9)) "major dur us" 0.5 (num "dur" major)
    | _ -> Alcotest.fail "expected exactly the two gc events")

(* ---- EXPLAIN counters ---------------------------------------------- *)

(* The acceptance invariant: the root operator's rows-emitted equals
   the number of answers, for every Adex query over a range of
   document sizes, with no interpreter fallback. *)
let test_explain_counts () =
  let pipe =
    Pipeline.Session.create
      (Pipeline.Service.create Workload.Adex.dtd
         ~groups:[ ("user", Workload.Adex.spec) ])
  in
  List.iter
    (fun (ads, buyers) ->
      let doc = Workload.Adex.document ~ads ~buyers () in
      List.iter
        (fun (name, q) ->
          let label = Printf.sprintf "%s ads=%d" name ads in
          let expected =
            match Pipeline.Session.answer pipe ~group:"user" q doc with
            | Ok rs -> List.length rs
            | Error e -> Alcotest.failf "%s: %s" label (Secview.Error.to_string e)
          in
          match Pipeline.Session.explain pipe ~group:"user" q doc with
          | Error e -> Alcotest.failf "%s: %s" label (Secview.Error.to_string e)
          | Ok x -> (
            Alcotest.(check int) (label ^ " results") expected
              x.Pipeline.x_results;
            Alcotest.(check bool)
              (label ^ " no fallback") true
              (x.Pipeline.x_fallback = None);
            match x.Pipeline.x_plan with
            | None -> Alcotest.failf "%s: no plan" label
            | Some (compiled, stats) ->
              let totals = Splan.Exec.Stats.totals stats in
              Alcotest.(check int) (label ^ " rows") expected
                (List.assoc "rows" totals);
              (* the rendered tree mirrors the compiled plan *)
              let node = Splan.Explain.of_compiled compiled stats in
              Alcotest.(check int) (label ^ " root emitted") expected
                (List.assoc "emitted" node.Splan.Explain.counts)))
        Workload.Adex.queries)
    [ (2, 2); (6, 4); (12, 8) ]

(* ---- slow-query records -------------------------------------------- *)

let test_slow_query_record () =
  let buf = Buffer.create 256 in
  let log = Audit_log.create ~clock:(Clock.fake ()) (Audit_log.Buffer buf) in
  Audit_log.log_slow_query log ~group:"user" ~query:"//a" ~translated:"b/a"
    ~latency_ms:12.5 ~threshold_ms:10.
    ~stages:[ ("eval", 9.25); ("translate", 1.5) ]
    ~counts:[ ("scanned", 7); ("rows", 2) ]
    ();
  Audit_log.log_slow_query log ~group:"g" ~query:"//b" ~latency_ms:3.
    ~threshold_ms:1. ~stages:[] ~counts:[] ~gc_pause_ms:0.75 ~gc_pauses:2
    ~session:4 ~peer:"unix" ~doc:"d" ();
  Audit_log.close log;
  let expected =
    {|{"type":"slow_query","ts_ns":0,"group":"user","query":"//a","translated":"b/a","latency_ms":12.5,"threshold_ms":10,"stages_ms":{"eval":9.25,"translate":1.5},"op_counts":{"scanned":7,"rows":2},"gc_pause_ms":null,"gc_pauses":null}|}
    ^ "\n"
    ^ {|{"type":"slow_query","ts_ns":1000000,"session":4,"peer":"unix","doc":"d","group":"g","query":"//b","translated":null,"latency_ms":3,"threshold_ms":1,"stages_ms":{},"op_counts":{},"gc_pause_ms":0.75,"gc_pauses":2}|}
    ^ "\n"
  in
  Alcotest.(check string) "JSONL records" expected (Buffer.contents buf)

(* ---- the HTTP scrape endpoint -------------------------------------- *)

let scrape_port = 17917

let http_get port path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let rec connect tries =
        match
          Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port))
        with
        | () -> ()
        | exception Unix.Unix_error (ECONNREFUSED, _, _) when tries > 0 ->
          Thread.delay 0.05;
          connect (tries - 1)
      in
      connect 100;
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      let b = Bytes.of_string req in
      ignore (Unix.write fd b 0 (Bytes.length b));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          slurp ()
        end
      in
      slurp ();
      Buffer.contents buf)

let split_response resp =
  let rec find i =
    if i + 3 >= String.length resp then (resp, "")
    else if String.sub resp i 4 = "\r\n\r\n" then
      ( String.sub resp 0 i,
        String.sub resp (i + 4) (String.length resp - i - 4) )
    else find (i + 1)
  in
  find 0

let test_http_scrape () =
  let service =
    Pipeline.Service.create Workload.Fig7.dtd
      ~groups:[ ("u", Workload.Fig7.spec) ]
  in
  (* a served query's latency would land on the server's own shards;
     prime the series through the overlay registry instead, so the
     scrape carries a histogram without a full client session *)
  let overlay = Metrics.create () in
  let server = Server.create ~metrics:overlay service in
  List.iter (Metrics.observe overlay "server.latency_ms.u") [ 0.4; 2.; 31. ];
  let th =
    Thread.create
      (fun () -> Server.serve server [ Server.Metrics_http ("", scrape_port) ])
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain server;
      Thread.join th)
    (fun () ->
      let resp = http_get scrape_port "/metrics" in
      let head, body = split_response resp in
      Alcotest.(check bool)
        "200 OK" true
        (String.starts_with ~prefix:"HTTP/1.0 200" head);
      Alcotest.(check bool)
        "openmetrics content type" true
        (let lower = String.lowercase_ascii head in
         let needle = "application/openmetrics-text" in
         let rec has i =
           i + String.length needle <= String.length lower
           && (String.sub lower i (String.length needle) = needle
              || has (i + 1))
         in
         has 0);
      let has_line prefix =
        List.exists
          (String.starts_with ~prefix)
          (String.split_on_char '\n' body)
      in
      Alcotest.(check bool)
        "scrape counter" true
        (has_line "secview_server_http_scrapes_total");
      Alcotest.(check bool)
        "queue depth gauge" true
        (has_line "secview_server_queue_depth");
      Alcotest.(check bool) "eof" true (has_line "# EOF");
      check_histograms_monotone body;
      (* anything else is 404 *)
      let head404, _ = split_response (http_get scrape_port "/favicon.ico") in
      Alcotest.(check bool)
        "404 elsewhere" true
        (String.starts_with ~prefix:"HTTP/1.0 404" head404))

let () =
  Alcotest.run "export"
    [
      ( "openmetrics",
        [
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "golden exposition" `Quick
            test_openmetrics_golden;
          Alcotest.test_case "cumulative buckets" `Quick
            test_openmetrics_monotone;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "round trip" `Quick test_chrome_trace_roundtrip;
          Alcotest.test_case "gc tracks" `Quick test_chrome_trace_gc_tracks;
        ] );
      ( "explain",
        [ Alcotest.test_case "operator counters" `Quick test_explain_counts ]
      );
      ( "slow-query",
        [ Alcotest.test_case "jsonl golden" `Quick test_slow_query_record ] );
      ( "http",
        [ Alcotest.test_case "GET /metrics" `Quick test_http_scrape ] );
    ]
