(* Document indexes and the evaluator's indexed fast path. *)

module A = Sxpath.Ast

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let parse = Sxpath.Parse.of_string

let doc () =
  Sxml.Tree.(
    of_spec
      (elem "r"
         [
           elem "a" [ elem "b" [ text "1" ]; elem "a" [ elem "b" [ text "2" ] ] ];
           elem "c" [ elem "b" [ text "3" ] ];
           elem "b" [ text "4" ];
         ]))

let test_extents () =
  let d = doc () in
  let idx = Sxml.Index.build d in
  Alcotest.(check int) "root extent covers everything"
    (Sxml.Tree.size d - 1)
    (Sxml.Index.extent idx 0);
  (* node 1 is the first <a>, whose subtree is ids 1..6 *)
  Alcotest.(check int) "first a extent" 6 (Sxml.Index.extent idx 1);
  Alcotest.(check int) "size" (Sxml.Tree.size d) (Sxml.Index.size idx)

let test_by_tag () =
  let idx = Sxml.Index.build (doc ()) in
  Alcotest.(check int) "four b elements" 4
    (Array.length (Sxml.Index.by_tag idx "b"));
  Alcotest.(check int) "no z elements" 0
    (Array.length (Sxml.Index.by_tag idx "z"));
  Alcotest.(check (list string)) "tags sorted"
    [ "a"; "b"; "c"; "r" ]
    (Sxml.Index.tags idx);
  let ids = Array.to_list (Sxml.Index.by_tag idx "b") in
  Alcotest.(check bool) "document order" true
    (List.sort Sxml.Tree.compare_doc_order ids = ids)

let test_descendants_with_tag () =
  let d = doc () in
  let idx = Sxml.Index.build d in
  let first_a = Sxml.Index.node idx 1 in
  Alcotest.(check (list string)) "b descendants of the first a"
    [ "1"; "2" ]
    (List.map Sxml.Tree.string_value
       (Sxml.Index.descendants_with_tag idx ~context:first_a "b"));
  Alcotest.(check int) "strict: the context itself is excluded" 1
    (List.length (Sxml.Index.descendants_with_tag idx ~context:first_a "a"))

let test_build_rejects_non_root () =
  let d = doc () in
  let sub = List.hd (Sxml.Tree.element_children d) in
  Alcotest.(check bool) "non-root rejected" true
    (match Sxml.Index.build sub with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_indexed_eval_equivalence () =
  let d = doc () in
  let idx = Sxml.Index.build d in
  List.iter
    (fun q ->
      let p = parse q in
      let plain = List.map (fun n -> n.Sxml.Tree.id) (eval p d) in
      let fast =
        List.map (fun n -> n.Sxml.Tree.id) (eval ~index:idx p d)
      in
      Alcotest.(check (list int)) ("indexed = plain on " ^ q) plain fast)
    [
      "//b"; "//a//b"; "//a/b"; "//b[. = \"2\"]"; "a//b | //c/b";
      "//a[//b]/a"; "//."; "//a/a/b"; ".//b";
    ]

let test_indexed_eval_on_workload () =
  let doc = Workload.Adex.document ~ads:15 ~buyers:8 () in
  let idx = Sxml.Index.build doc in
  let view = Workload.Adex.view () in
  List.iter
    (fun (name, q) ->
      let pt = Secview.Rewrite.rewrite view q in
      let plain =
        List.map (fun n -> n.Sxml.Tree.id) (eval pt doc)
      in
      let fast =
        List.map
          (fun n -> n.Sxml.Tree.id)
          (eval ~index:idx pt doc)
      in
      Alcotest.(check (list int)) ("adex " ^ name) plain fast;
      (* the naive loosened forms hit the fast path hard *)
      let naive_q = Secview.Naive.rewrite_query ~view q in
      let prepared = Secview.Naive.prepare Workload.Adex.spec doc in
      let pidx = Sxml.Index.build prepared in
      let plain_n =
        List.map (fun n -> n.Sxml.Tree.id) (eval naive_q prepared)
      in
      let fast_n =
        List.map
          (fun n -> n.Sxml.Tree.id)
          (eval ~index:pidx naive_q prepared)
      in
      Alcotest.(check (list int)) ("naive " ^ name) plain_n fast_n)
    Workload.Adex.queries

let test_fast_path_does_less_work () =
  let doc = Workload.Adex.document ~ads:40 ~buyers:20 () in
  let idx = Sxml.Index.build doc in
  let q = parse "//buyer-info//name" in
  let work f =
    Sxpath.Eval.visited := 0;
    ignore (f ());
    !Sxpath.Eval.visited
  in
  let scan = work (fun () -> eval q doc) in
  let fast = work (fun () -> eval ~index:idx q doc) in
  Alcotest.(check bool)
    (Printf.sprintf "index %d << scan %d" fast scan)
    true
    (fast * 5 < scan)

(* property: indexed and plain evaluation agree on random docs/queries *)
let gen_case =
  let open QCheck2.Gen in
  let* seed = int_bound 1000 in
  let doc =
    Sdtd.Gen.generate
      ~config:{ Sdtd.Gen.default_config with seed }
      Workload.Hospital.dtd
  in
  let labels = Sdtd.Dtd.reachable Workload.Hospital.dtd in
  let* size = int_range 1 8 in
  let rec gen n =
    if n <= 1 then map (fun l -> A.Label l) (oneofl labels)
    else
      oneof
        [
          map (fun l -> A.Label l) (oneofl labels);
          return A.Wildcard;
          map2 (fun a b -> A.Slash (a, b)) (gen (n / 2)) (gen (n / 2));
          map (fun a -> A.Dslash a) (gen (n - 1));
          map2 (fun a b -> A.Union (a, b)) (gen (n / 2)) (gen (n / 2));
          map2
            (fun a q -> A.Qualify (a, A.Exists q))
            (gen (n / 2))
            (gen (n / 2));
        ]
  in
  let* q = gen size in
  return (doc, q)

let prop_indexed_equivalence =
  QCheck2.Test.make ~name:"indexed evaluation = plain evaluation" ~count:300
    ~print:(fun (_, q) -> Sxpath.Print.to_string q)
    gen_case
    (fun (doc, q) ->
      let idx = Sxml.Index.build doc in
      List.map (fun n -> n.Sxml.Tree.id) (eval q doc)
      = List.map
          (fun n -> n.Sxml.Tree.id)
          (eval ~index:idx q doc))

let () =
  Alcotest.run "index"
    [
      ( "structure",
        [
          Alcotest.test_case "extents" `Quick test_extents;
          Alcotest.test_case "by_tag" `Quick test_by_tag;
          Alcotest.test_case "descendants_with_tag" `Quick
            test_descendants_with_tag;
          Alcotest.test_case "non-root rejected" `Quick
            test_build_rejects_non_root;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "equivalence (handwritten)" `Quick
            test_indexed_eval_equivalence;
          Alcotest.test_case "equivalence (workload)" `Quick
            test_indexed_eval_on_workload;
          Alcotest.test_case "less work" `Quick test_fast_path_does_less_work;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_indexed_equivalence ] );
    ]
