(* The static-analysis layer: every checker over all four workload
   policies, plus targeted fixtures that trigger each diagnostic code. *)

module D = Sanalysis.Diagnostic
module Lint = Sanalysis.Lint
module Spec = Secview.Spec
module View = Secview.View
module R = Sdtd.Regex

let e l = R.Elt l

let codes ds = List.map (fun d -> d.D.code) ds
let error_codes ds = codes (D.errors ds)

let check_clean what ds =
  Alcotest.(check (list string)) (what ^ " has no lint errors") []
    (error_codes ds)

(* --- the four workloads lint clean ---------------------------------- *)

let test_hospital_clean () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  check_clean "nurse policy" (Lint.check_spec spec);
  let view = Secview.Derive.derive spec in
  check_clean "nurse view" (Lint.check_view ~dtd view);
  let p1, p2 = Workload.Hospital.inference_queries in
  List.iter
    (fun q -> check_clean "hospital query" (Lint.check_query (View.dtd view) q))
    [ p1; p2; Sxpath.Parse.of_string "//patient//bill" ]

let test_adex_clean () =
  let dtd = Workload.Adex.dtd in
  check_clean "adex policy" (Lint.check_spec Workload.Adex.spec);
  let view = Workload.Adex.view () in
  check_clean "adex view" (Lint.check_view ~dtd view);
  List.iter
    (fun (name, q) ->
      check_clean ("adex " ^ name) (Lint.check_query ~name (View.dtd view) q))
    Workload.Adex.queries

let test_adex_paper_facts () =
  (* The lints rediscover the paper's Section 6 observations: Q2's
     apartment branch is dead (warranties only exist for houses), Q3's
     qualifier is implied by the co-existence constraint, and Q4 is
     provably empty under the exclusive constraint. *)
  let vdtd = View.dtd (Workload.Adex.view ()) in
  let lint q = Lint.check_query vdtd q in
  Alcotest.(check (list string)) "Q2: dead union branch" [ "SV202" ]
    (codes (lint Workload.Adex.q2));
  Alcotest.(check (list string)) "Q3: vacuously true qualifier" [ "SV203" ]
    (codes (lint Workload.Adex.q3));
  Alcotest.(check bool) "Q4: provably empty" true
    (List.mem "SV201" (codes (lint Workload.Adex.q4)))

let test_xmark_clean () =
  let dtd = Workload.Xmark.dtd in
  check_clean "xmark policy" (Lint.check_spec Workload.Xmark.spec);
  let view = Workload.Xmark.view () in
  check_clean "xmark view (recursive)" (Lint.check_view ~dtd view);
  List.iter
    (fun (name, q) ->
      check_clean ("xmark " ^ name) (Lint.check_query ~name (View.dtd view) q))
    Workload.Xmark.queries

let test_fig7_clean () =
  let dtd = Workload.Fig7.dtd in
  check_clean "fig7 policy" (Lint.check_spec Workload.Fig7.spec);
  let view = Workload.Fig7.view () in
  check_clean "fig7 view (recursive)" (Lint.check_view ~dtd view);
  check_clean "fig7 //b"
    (Lint.check_query (View.dtd view) (Sxpath.Parse.of_string "//b"))

(* --- targeted fixtures: each code exactly once ----------------------- *)

(* r -> a, b ; a -> d, c* ; b, c, d leaves *)
let fixture_dtd =
  Sdtd.Dtd.create ~root:"r"
    [
      ("r", R.Seq [ e "a"; e "b" ]);
      ("a", R.Seq [ e "d"; R.Star (e "c") ]);
      ("b", R.Str); ("c", R.Str); ("d", R.Str);
    ]

let qual s = Sxpath.Parse.qual_of_string s
let path s = Sxpath.Parse.of_string s

let check_codes what expected ds =
  Alcotest.(check (list string)) what expected (codes ds)

let test_sv001_dead_annotation () =
  (* Y on (a, c): a is only ever accessible, so the Y changes nothing *)
  let spec = Spec.make fixture_dtd [ (("a", "c"), Spec.Yes) ] in
  check_codes "SV001 exactly once" [ "SV001" ] (Lint.check_spec spec)

let test_sv002_unknown_attribute () =
  let spec =
    Spec.make fixture_dtd [ (("r", "a"), Spec.Cond (qual "@id = \"1\"")) ]
  in
  check_codes "SV002 exactly once" [ "SV002" ] (Lint.check_spec spec)

let test_sv003_unknown_element () =
  let spec =
    Spec.make fixture_dtd [ (("r", "a"), Spec.Cond (qual "zzz")) ]
  in
  check_codes "SV003 exactly once" [ "SV003" ] (Lint.check_spec spec)

let test_sv004_hidden_regrant () =
  let spec =
    Spec.make fixture_dtd
      [ (("r", "a"), Spec.No); (("a", "c"), Spec.Yes) ]
  in
  check_codes "SV004 exactly once" [ "SV004" ] (Lint.check_spec spec)

(* hand-built views over [fixture_dtd]'s document space *)
let view_of sigma_path =
  let vdtd = Sdtd.Dtd.create ~root:"r" [ ("r", e "a"); ("a", R.Str) ] in
  View.make ~dtd:vdtd ~sigma:[ (("r", "a"), sigma_path) ] ()

let test_sv101_stale_sigma () =
  check_codes "SV101 exactly once" [ "SV101" ]
    (Lint.check_view ~dtd:fixture_dtd (view_of (path "zzz")))

let test_sv102_foreign_sigma () =
  (* σ(r, a) extracts b elements: the extraction works but lands on the
     wrong element type *)
  check_codes "SV102 exactly once" [ "SV102" ]
    (Lint.check_view ~dtd:fixture_dtd (view_of (path "b")))

let test_sv103_sigma_qualifier () =
  check_codes "SV103 exactly once" [ "SV103" ]
    (Lint.check_view ~dtd:fixture_dtd (view_of (path "a[@id = \"1\"]")))

let test_sv201_empty_query () =
  check_codes "SV201 exactly once" [ "SV201" ]
    (Lint.check_query fixture_dtd (path "zzz"))

let test_sv202_dead_branch () =
  check_codes "SV202 exactly once" [ "SV202" ]
    (Lint.check_query fixture_dtd (path "a | zzz"))

let test_sv203_vacuous_true () =
  (* d is an unskippable concatenation member of a's production:
     co-existence decides [d] at a-elements *)
  check_codes "SV203 exactly once" [ "SV203" ]
    (Lint.check_query fixture_dtd (path "a[d]"))

let test_sv204_vacuous_false () =
  (* the union keeps the query satisfiable so only the qualifier lint
     fires *)
  check_codes "SV204 exactly once" [ "SV204" ]
    (Lint.check_query fixture_dtd (path "a[zzz] | a"))

let test_sv205_undeclared_attribute () =
  check_codes "SV205 exactly once" [ "SV205" ]
    (Lint.check_query fixture_dtd (path "a/@id | a"))

(* --- the strict pipeline gate ---------------------------------------- *)

let test_strict_gate_accepts () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let p =
    Secview.Pipeline.Service.create ~strict:true dtd
      ~groups:[ ("nurses", spec) ]
  in
  Alcotest.(check int) "one group" 1
    (List.length (Secview.Pipeline.Service.groups p))

let test_strict_gate_rejects_bad_spec () =
  let spec =
    Spec.make fixture_dtd [ (("r", "a"), Spec.Cond (qual "@id = \"1\"")) ]
  in
  Alcotest.(check bool) "bad qualifier rejected" true
    (match
       Secview.Pipeline.Service.create ~strict:true fixture_dtd
         ~groups:[ ("g", spec) ]
     with
    | exception Invalid_argument msg ->
      (* the rendered diagnostics carry their codes *)
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      contains msg "SV002"
    | _ -> false)

let test_strict_gate_rejects_stale_view () =
  let stale = view_of (path "zzz") in
  (* non-strict construction still accepts it -- the pre-lint state *)
  let _lenient =
    Secview.Pipeline.Service.create_with_views fixture_dtd
      ~groups:[ ("g", stale) ]
  in
  Alcotest.(check bool) "stale view rejected" true
    (match
       Secview.Pipeline.Service.create_with_views ~strict:true fixture_dtd
         ~groups:[ ("g", stale) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- diagnostics plumbing -------------------------------------------- *)

let test_rendering () =
  let d =
    D.make ~code:"SV999" ~severity:D.Error ~subject:(D.Sigma ("a", "b"))
      "boom"
  in
  Alcotest.(check string) "human" "error[SV999] sigma(a, b): boom"
    (Format.asprintf "%a" D.pp d);
  Alcotest.(check string) "machine" "SV999\terror\tsigma(a, b)\tboom"
    (D.to_line d);
  let ds =
    [
      D.make ~code:"I" ~severity:D.Info "i";
      D.make ~code:"E" ~severity:D.Error "e";
      D.make ~code:"W" ~severity:D.Warning "w";
    ]
  in
  Alcotest.(check (list string)) "sorted most-severe first" [ "E"; "W"; "I" ]
    (codes (D.by_severity ds));
  Alcotest.(check bool) "has_errors" true (D.has_errors ds);
  Alcotest.(check int) "errors" 1 (List.length (D.errors ds))

let () =
  Alcotest.run "lint"
    [
      ( "workloads-clean",
        [
          Alcotest.test_case "hospital" `Quick test_hospital_clean;
          Alcotest.test_case "adex" `Quick test_adex_clean;
          Alcotest.test_case "adex paper facts" `Quick test_adex_paper_facts;
          Alcotest.test_case "xmark" `Quick test_xmark_clean;
          Alcotest.test_case "fig7" `Quick test_fig7_clean;
        ] );
      ( "codes",
        [
          Alcotest.test_case "SV001 dead annotation" `Quick
            test_sv001_dead_annotation;
          Alcotest.test_case "SV002 unknown attribute" `Quick
            test_sv002_unknown_attribute;
          Alcotest.test_case "SV003 unknown element" `Quick
            test_sv003_unknown_element;
          Alcotest.test_case "SV004 hidden re-grant" `Quick
            test_sv004_hidden_regrant;
          Alcotest.test_case "SV101 stale sigma" `Quick test_sv101_stale_sigma;
          Alcotest.test_case "SV102 foreign sigma" `Quick
            test_sv102_foreign_sigma;
          Alcotest.test_case "SV103 sigma qualifier" `Quick
            test_sv103_sigma_qualifier;
          Alcotest.test_case "SV201 empty query" `Quick test_sv201_empty_query;
          Alcotest.test_case "SV202 dead branch" `Quick test_sv202_dead_branch;
          Alcotest.test_case "SV203 vacuous true" `Quick test_sv203_vacuous_true;
          Alcotest.test_case "SV204 vacuous false" `Quick
            test_sv204_vacuous_false;
          Alcotest.test_case "SV205 undeclared attribute" `Quick
            test_sv205_undeclared_attribute;
        ] );
      ( "strict-gate",
        [
          Alcotest.test_case "accepts clean policy" `Quick
            test_strict_gate_accepts;
          Alcotest.test_case "rejects bad qualifier" `Quick
            test_strict_gate_rejects_bad_spec;
          Alcotest.test_case "rejects stale view" `Quick
            test_strict_gate_rejects_stale_view;
        ] );
      ( "diagnostics",
        [ Alcotest.test_case "rendering" `Quick test_rendering ] );
    ]
