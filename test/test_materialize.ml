(* Materialization semantics: soundness and completeness of derived
   views (Theorem 3.2's characterization), dummy handling, ordering,
   and abort behaviour. *)

module R = Sdtd.Regex
module Spec = Secview.Spec
module View = Secview.View
module Derive = Secview.Derive
module Access = Secview.Access
module Materialize = Secview.Materialize

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let e l = R.Elt l

let hospital_setup () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let view = Derive.derive spec in
  let env = Workload.Hospital.nurse_env "6" in
  let doc = Workload.Hospital.sample_document () in
  (spec, view, env, doc)

let test_hospital_materializes_and_conforms () =
  let spec, view, env, doc = hospital_setup () in
  let vt = Materialize.materialize ~env ~spec ~view doc in
  let tree = Materialize.to_tree vt in
  Alcotest.(check (list string)) "conforms to the view DTD" []
    (List.map
       (fun v -> v.Sdtd.Validate.message)
       (Sdtd.Validate.check (View.dtd view) tree))

let test_hospital_sound_and_complete () =
  (* Non-dummy view elements are exactly the accessible elements of
     the document; dummy sources are inaccessible. *)
  let spec, view, env, doc = hospital_setup () in
  let vt = Materialize.materialize ~env ~spec ~view doc in
  let accessible = Access.accessible_set ~env spec doc in
  let sources = Materialize.element_sources vt in
  let non_dummy_sources =
    List.filter_map
      (fun (label, id) -> if View.is_dummy view label then None else Some id)
      sources
  in
  let accessible_element_ids =
    List.filter_map
      (fun n ->
        if Sxml.Tree.is_element n && Access.IntSet.mem n.Sxml.Tree.id accessible
        then Some n.Sxml.Tree.id
        else None)
      (Sxml.Tree.descendants_or_self doc)
  in
  Alcotest.(check (list int)) "sound and complete"
    accessible_element_ids
    (List.sort compare non_dummy_sources);
  List.iter
    (fun (label, id) ->
      if View.is_dummy view label then
        Alcotest.(check bool)
          (Printf.sprintf "dummy source %d inaccessible" id)
          false
          (Access.IntSet.mem id accessible))
    sources

let test_ward_filtering () =
  (* Only the ward-6 department materializes under $wardNo = 6. *)
  let spec, view, env, doc = hospital_setup () in
  let vt = Materialize.materialize ~env ~spec ~view doc in
  let tree = Materialize.to_tree vt in
  Alcotest.(check int) "one dept" 1
    (List.length (eval (Sxpath.Parse.of_string "dept") tree));
  let names =
    List.map Sxml.Tree.string_value
      (eval
         (Sxpath.Parse.of_string "//patient/name")
         tree)
  in
  Alcotest.(check (list string)) "ward 6 patients only"
    [ "Alice"; "Bob"; "Carol" ] names

let test_trial_membership_hidden () =
  (* All patients of the visible dept appear side by side; nothing in
     the view separates trial from regular patients. *)
  let spec, view, env, doc = hospital_setup () in
  let vt = Materialize.materialize ~env ~spec ~view doc in
  let tree = Materialize.to_tree vt in
  Alcotest.(check int) "clinicalTrial absent" 0
    (List.length
       (eval (Sxpath.Parse.of_string "//clinicalTrial") tree));
  Alcotest.(check int) "two patientInfo siblings" 2
    (List.length
       (eval (Sxpath.Parse.of_string "dept/patientInfo") tree))

let test_document_order_preserved () =
  let spec, view, env, doc = hospital_setup () in
  let vt = Materialize.materialize ~env ~spec ~view doc in
  let sources = List.map snd (Materialize.element_sources vt) in
  (* Preorder of the view must respect the document order within each
     sibling group; as a cheap proxy: bill values appear in document
     order. *)
  ignore sources;
  let tree = Materialize.to_tree vt in
  Alcotest.(check (list string)) "bills in document order"
    [ "900"; "120"; "80" ]
    (List.map Sxml.Tree.string_value
       (eval (Sxpath.Parse.of_string "//bill") tree))

let test_to_tree_with_sources () =
  let spec, view, env, doc = hospital_setup () in
  let vt = Materialize.materialize ~env ~spec ~view doc in
  let tree, source_of = Materialize.to_tree_with_sources vt in
  let names = eval (Sxpath.Parse.of_string "//patient/name") tree in
  List.iter
    (fun n ->
      match source_of n.Sxml.Tree.id with
      | None -> Alcotest.fail "missing source mapping"
      | Some src ->
        let orig =
          List.find
            (fun m -> m.Sxml.Tree.id = src)
            (Sxml.Tree.descendants_or_self doc)
        in
        Alcotest.(check (option string)) "source has same tag" (Some "name")
          (Sxml.Tree.tag orig))
    names

let test_abort_on_wrong_root () =
  let spec, view, env, _ = hospital_setup () in
  ignore env;
  let bad = Sxml.Tree.(of_spec (elem "clinic" [])) in
  Alcotest.(check bool) "aborts" true
    (match Materialize.materialize ~spec ~view bad with
    | exception Materialize.Abort _ -> true
    | _ -> false)

let test_abort_on_nonconforming_extraction () =
  (* A handcrafted view whose σ extracts two nodes for a
     one-node slot must abort. *)
  let dtd = Sdtd.Dtd.create ~root:"r" [ ("r", e "a"); ("a", R.Str) ] in
  let view =
    View.make ~dtd
      ~sigma:[ (("r", "a"), Sxpath.Parse.of_string "a | b") ]
      ()
  in
  let doc_dtd =
    Sdtd.Dtd.create ~root:"r"
      [ ("r", R.Seq [ e "a"; e "b" ]); ("a", R.Str); ("b", R.Str) ]
  in
  let spec = Spec.make doc_dtd [] in
  let doc =
    Sxml.Tree.(
      of_spec (elem "r" [ elem "a" [ text "1" ]; elem "b" [ text "2" ] ]))
  in
  Alcotest.(check bool) "aborts on arity violation" true
    (match Materialize.materialize ~spec ~view doc with
    | exception Materialize.Abort _ -> true
    | _ -> false)

let test_empty_star_is_fine () =
  let dtd = Sdtd.Dtd.create ~root:"r" [ ("r", R.Star (e "a")); ("a", R.Str) ] in
  let spec = Spec.make dtd [] in
  let view = View.identity_of dtd in
  let doc = Sxml.Tree.(of_spec (elem "r" [])) in
  let vt = Materialize.materialize ~spec ~view doc in
  Alcotest.(check int) "single root, no children" 1 (Materialize.size vt)

let test_identity_view_is_identity () =
  let dtd = Workload.Hospital.dtd in
  let spec = Spec.make dtd [] in
  let view = View.identity_of dtd in
  let doc = Workload.Hospital.sample_document () in
  let vt = Materialize.materialize ~spec ~view doc in
  Alcotest.(check bool) "materialization equals the document" true
    (Sxml.Tree.equal_structure doc (Materialize.to_tree vt))

let test_size () =
  let spec, view, env, doc = hospital_setup () in
  let vt = Materialize.materialize ~env ~spec ~view doc in
  Alcotest.(check int) "size counts elements and texts"
    (Sxml.Tree.size (Materialize.to_tree vt))
    (Materialize.size vt)

let () =
  Alcotest.run "materialize"
    [
      ( "hospital",
        [
          Alcotest.test_case "conforms to view DTD" `Quick
            test_hospital_materializes_and_conforms;
          Alcotest.test_case "sound and complete" `Quick
            test_hospital_sound_and_complete;
          Alcotest.test_case "ward filtering" `Quick test_ward_filtering;
          Alcotest.test_case "trial membership hidden" `Quick
            test_trial_membership_hidden;
          Alcotest.test_case "document order" `Quick
            test_document_order_preserved;
          Alcotest.test_case "source mapping" `Quick test_to_tree_with_sources;
        ] );
      ( "aborts-and-edges",
        [
          Alcotest.test_case "wrong root" `Quick test_abort_on_wrong_root;
          Alcotest.test_case "arity violation" `Quick
            test_abort_on_nonconforming_extraction;
          Alcotest.test_case "empty star" `Quick test_empty_star_is_fine;
          Alcotest.test_case "identity view" `Quick
            test_identity_view_is_identity;
          Alcotest.test_case "size" `Quick test_size;
        ] );
    ]
