(* The naive element-level baseline (Section 6): query loosening,
   accessibility filtering, and agreement with the view-based pipeline
   on the workloads where its unique-element-name assumption holds. *)

module Naive = Secview.Naive
module Derive = Secview.Derive
module Rewrite = Secview.Rewrite

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let parse = Sxpath.Parse.of_string

let test_rewrite_rules () =
  (* child axes loosen to descendant axes, and the accessibility check
     lands on the last step *)
  Alcotest.(check string) "loosened form"
    "(//a//b)[@accessibility = \"1\"]"
    (Sxpath.Print.to_string (Naive.rewrite_query (parse "a/b")));
  Alcotest.(check string) "existing // kept"
    "(//a//b)[@accessibility = \"1\"]"
    (Sxpath.Print.to_string (Naive.rewrite_query (parse "//a/b")));
  Alcotest.(check string) "qualifier paths loosened too"
    "((//a)[//b]//c)[@accessibility = \"1\"]"
    (Sxpath.Print.to_string (Naive.rewrite_query (parse "a[b]/c")))

let test_dummy_labels_generalize () =
  let view = Derive.derive (Workload.Hospital.nurse_spec Workload.Hospital.dtd) in
  let p = Naive.rewrite_query ~view (parse "//treatment/dummy1/bill") in
  let s = Sxpath.Print.to_string p in
  Alcotest.(check bool) "dummy became a wildcard descent" true
    (not (String.length s >= 5 && String.sub s 0 5 = "dummy")
    && String.length s > 0
    &&
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    contains "//*" && not (contains "dummy"))

let test_only_accessible_returned () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let env = Workload.Hospital.nurse_env "6" in
  let doc = Workload.Hospital.sample_document () in
  let prepared = Naive.prepare ~env spec doc in
  let results = Naive.eval ~env (parse "//patient/name") prepared in
  let access = Secview.Access.accessible_set ~env spec doc in
  List.iter
    (fun n ->
      Alcotest.(check bool) "returned node is accessible" true
        (Secview.Access.IntSet.mem n.Sxml.Tree.id access))
    results;
  Alcotest.(check (list string)) "ward-6 names"
    [ "Alice"; "Bob"; "Carol" ]
    (List.map Sxml.Tree.string_value results)

let test_agrees_with_rewrite_on_hospital () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let view = Derive.derive spec in
  let env = Workload.Hospital.nurse_env "6" in
  let doc = Workload.Hospital.sample_document () in
  let prepared = Naive.prepare ~env spec doc in
  List.iter
    (fun q ->
      let p = parse q in
      let naive_ids =
        List.map (fun n -> n.Sxml.Tree.id) (Naive.eval ~env ~view p prepared)
      in
      let rewrite_ids =
        List.map
          (fun n -> n.Sxml.Tree.id)
          (eval ~env (Rewrite.rewrite view p) doc)
      in
      Alcotest.(check (list int)) ("agree on " ^ q) rewrite_ids naive_ids)
    [
      "//patient/name";
      "//patient//bill";
      "//staffInfo//name";
      "//medication";
      "//patientInfo/patient";
    ]

let test_agrees_on_adex () =
  let view = Workload.Adex.view () in
  let doc = Workload.Adex.document ~ads:6 ~buyers:4 () in
  let prepared = Naive.prepare Workload.Adex.spec doc in
  List.iter
    (fun (name, q) ->
      let naive_ids =
        List.map (fun n -> n.Sxml.Tree.id) (Naive.eval ~view q prepared)
      in
      let rewrite_ids =
        List.map
          (fun n -> n.Sxml.Tree.id)
          (eval (Rewrite.rewrite view q) doc)
      in
      Alcotest.(check (list int)) ("agree on " ^ name) rewrite_ids naive_ids)
    Workload.Adex.queries

let test_does_more_work () =
  (* the whole point of Table 1: loosened queries visit far more
     context nodes than DTD-rewritten ones *)
  let view = Workload.Adex.view () in
  let doc = Workload.Adex.document ~ads:20 ~buyers:10 () in
  let prepared = Naive.prepare Workload.Adex.spec doc in
  let work f =
    Sxpath.Eval.visited := 0;
    ignore (f ());
    !Sxpath.Eval.visited
  in
  let q = Workload.Adex.q1 in
  let naive_work = work (fun () -> Naive.eval ~view q prepared) in
  let rewrite_work =
    let pt = Rewrite.rewrite view q in
    work (fun () -> eval pt doc)
  in
  Alcotest.(check bool)
    (Printf.sprintf "naive %d >> rewrite %d" naive_work rewrite_work)
    true
    (naive_work > 5 * rewrite_work)

let () =
  Alcotest.run "naive"
    [
      ( "rewriting",
        [
          Alcotest.test_case "the two rules" `Quick test_rewrite_rules;
          Alcotest.test_case "dummy labels generalize" `Quick
            test_dummy_labels_generalize;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "only accessible nodes" `Quick
            test_only_accessible_returned;
          Alcotest.test_case "agrees with rewrite (hospital)" `Quick
            test_agrees_with_rewrite_on_hospital;
          Alcotest.test_case "agrees with rewrite (adex)" `Quick
            test_agrees_on_adex;
          Alcotest.test_case "does much more work" `Quick test_does_more_work;
        ] );
    ]
