(* The observability layer: probe spine (Secview.Trace), span recorder,
   metrics registry, JSONL audit log — and the zero-overhead-when-
   disabled guarantee the null probe makes. *)

module Trace = Secview.Trace
module Clock = Sobs.Clock
module Json = Sobs.Json
module Metrics = Sobs.Metrics
module Tracer = Sobs.Tracer
module Audit_log = Sobs.Audit_log

let parse = Sxpath.Parse.of_string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %s" what needle)
    true (contains hay needle)

(* Every test leaves the global hooks clean. *)
let with_probe tracer f =
  Tracer.install tracer;
  Fun.protect ~finally:Tracer.uninstall f

(* --- span recording ------------------------------------------------- *)

let test_span_nesting () =
  (* fake clock: read k returns k ms (in ns); reads happen at enter and
     leave of each span, innermost leaves first *)
  let tracer = Tracer.create ~clock:(Clock.fake ()) () in
  let r =
    with_probe tracer (fun () ->
        Trace.span "outer" (fun () ->
            ignore (Trace.span "inner1" (fun () -> 1));
            Trace.span "inner2" (fun () -> 2)))
  in
  Alcotest.(check int) "span returns the thunk's value" 2 r;
  let spans = Tracer.spans tracer in
  Alcotest.(check (list string))
    "start order" [ "outer"; "inner1"; "inner2" ]
    (List.map (fun s -> s.Tracer.name) spans);
  Alcotest.(check (list int))
    "nesting depths" [ 0; 1; 1 ]
    (List.map (fun s -> s.Tracer.depth) spans);
  let durations =
    List.map (fun s -> Clock.ms s.Tracer.start_ns s.Tracer.stop_ns) spans
  in
  (* reads: enter outer (0), enter inner1 (1), leave inner1 (2),
     enter inner2 (3), leave inner2 (4), leave outer (5) *)
  Alcotest.(check (list (float 1e-9)))
    "durations from the fake clock" [ 5.; 1.; 1. ] durations

let test_span_closes_on_exception () =
  let tracer = Tracer.create ~clock:(Clock.fake ()) () in
  (try
     with_probe tracer (fun () ->
         Trace.span "boom" (fun () -> failwith "no"))
   with Failure _ -> ());
  match Tracer.spans tracer with
  | [ s ] ->
    Alcotest.(check string) "span recorded despite raise" "boom" s.Tracer.name
  | spans ->
    Alcotest.failf "expected exactly one span, got %d" (List.length spans)

let test_span_feeds_metrics () =
  let metrics = Metrics.create () in
  let tracer = Tracer.create ~clock:(Clock.fake ()) ~metrics () in
  with_probe tracer (fun () ->
      Trace.span "stage1" (fun () -> ());
      Trace.count "c" 2;
      Trace.count "c" 3;
      Trace.value "v" 7);
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter metrics "c");
  (match Metrics.summary metrics "stage.stage1" with
  | Some s ->
    Alcotest.(check int) "one duration recorded" 1 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "1ms from the fake clock" 1. s.Metrics.p50
  | None -> Alcotest.fail "stage duration series missing");
  match Metrics.summary metrics "v" with
  | Some s -> Alcotest.(check (float 1e-9)) "value observed" 7. s.Metrics.p50
  | None -> Alcotest.fail "value series missing"

(* --- metrics math --------------------------------------------------- *)

let test_histogram_math () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  match Metrics.summary m "lat" with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "min" 1. s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 100. s.Metrics.max;
    Alcotest.(check (float 1e-9)) "mean" 50.5 s.Metrics.mean;
    (* percentiles are bucket upper-bound estimates now that summaries
       and the OpenMetrics exposition derive from the same explicit
       buckets: 1..100 under the default ladder lands p50 in the
       le=50 bucket and the upper tail in le=100 *)
    Alcotest.(check (float 1e-9)) "p50" 50. s.Metrics.p50;
    Alcotest.(check (float 1e-9)) "p90" 100. s.Metrics.p90;
    Alcotest.(check (float 1e-9)) "p95" 100. s.Metrics.p95;
    Alcotest.(check (float 1e-9)) "p99" 100. s.Metrics.p99

let test_histogram_edges () =
  let m = Metrics.create () in
  Alcotest.(check bool) "empty series" true (Metrics.summary m "x" = None);
  Metrics.observe m "x" 42.;
  (match Metrics.summary m "x" with
  | Some s ->
    Alcotest.(check (float 1e-9)) "single obs p50" 42. s.Metrics.p50;
    Alcotest.(check (float 1e-9)) "single obs p99" 42. s.Metrics.p99
  | None -> Alcotest.fail "summary missing");
  Alcotest.(check int) "missing counter is 0" 0 (Metrics.counter m "nope")

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.incr m "hits";
  Metrics.incr ~by:2 m "hits";
  List.iter (Metrics.observe m "lat") [ 1.; 2.; 3.; 4. ];
  Alcotest.(check string) "registry JSON"
    ({|{"counters":{"hits":3},"series":{"lat":{"count":4,"sum":10,"min":1,|}
    ^ {|"max":4,"mean":2.5,"p50":2.5,"p90":4,"p95":4,"p99":4}}}|})
    (Json.to_string (Metrics.to_json m))

let test_json_escaping () =
  Alcotest.(check string) "strings are escaped"
    {|{"a\"b":"line\nbreak\tand\\slash"}|}
    (Json.to_string
       (Json.Obj [ ("a\"b", Json.String "line\nbreak\tand\\slash") ]))

(* --- audit log ------------------------------------------------------ *)

let test_audit_golden () =
  let buf = Buffer.create 256 in
  let log = Audit_log.create ~clock:(Clock.fake ()) (Audit_log.Buffer buf) in
  let q = parse "//patient/name" in
  let pt = parse "dept/patientInfo/patient/name" in
  Audit_log.log_event log
    {
      Trace.group = "nurses";
      query = q;
      translated = Some pt;
      cache_hit = false;
      height = None;
      results = 2;
      error = None;
    };
  Audit_log.log_diagnostic log ~code:"SV002" ~severity:"error"
    ~subject:"ann(hospital, dept)" "undeclared attribute @ward";
  Audit_log.log_note log ~kind:"strict_gate" "validation failed";
  let expected =
    Printf.sprintf
      {|{"type":"query","ts_ns":0,"group":"nurses","query":"%s","translated":"%s","cache":"miss","height":null,"results":2,"error":null}|}
      (Sxpath.Print.to_string q)
      (Sxpath.Print.to_string pt)
    ^ "\n"
    ^ {|{"type":"diagnostic","ts_ns":1000000,"code":"SV002","severity":"error","subject":"ann(hospital, dept)","message":"undeclared attribute @ward"}|}
    ^ "\n"
    ^ {|{"type":"note","ts_ns":2000000,"kind":"strict_gate","message":"validation failed"}|}
    ^ "\n"
  in
  Alcotest.(check string) "JSONL stream" expected (Buffer.contents buf)

(* --- the instrumented pipeline -------------------------------------- *)

let fig7_pipeline () =
  Secview.Pipeline.Session.create
    (Secview.Pipeline.Service.create Workload.Fig7.dtd
       ~groups:[ ("u", Workload.Fig7.spec) ])

let test_pipeline_spans_and_audit () =
  let metrics = Metrics.create () in
  let tracer = Tracer.create ~metrics () in
  let buf = Buffer.create 256 in
  let log = Audit_log.create ~tracer (Audit_log.Buffer buf) in
  let doc = Workload.Fig7.document ~depth:3 in
  let q = parse "//b" in
  with_probe tracer (fun () ->
      let pipe = fig7_pipeline () in
      Audit_log.install log;
      Fun.protect ~finally:Audit_log.uninstall (fun () ->
          let r1 = Secview.Pipeline.Session.answer_exn pipe ~group:"u" q doc in
          let r2 = Secview.Pipeline.Session.answer_exn pipe ~group:"u" q doc in
          Alcotest.(check int) "same answers" (List.length r1)
            (List.length r2)));
  let names = List.map (fun s -> s.Tracer.name) (Tracer.spans tracer) in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (stage ^ " span recorded") true (List.mem stage names))
    [ "derive"; "answer"; "height"; "translate"; "unfold"; "rewrite";
      "optimize"; "plan"; "eval" ];
  (* second call: translation cache hit, height memo hit *)
  Alcotest.(check int) "cache miss counted" 1
    (Metrics.counter metrics "pipeline.cache.miss.u");
  Alcotest.(check int) "cache hit counted" 1
    (Metrics.counter metrics "pipeline.cache.hit.u");
  Alcotest.(check int) "height computed once" 1
    (Metrics.counter metrics "pipeline.height.computed");
  Alcotest.(check int) "height memo hit on the second request" 1
    (Metrics.counter metrics "pipeline.height.memo_hit");
  (match Metrics.summary metrics "eval.visited" with
  | Some s -> Alcotest.(check int) "visited recorded per request" 2 s.Metrics.count
  | None -> Alcotest.fail "eval.visited series missing");
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  Alcotest.(check int) "one audit record per answer" 2 (List.length lines);
  let first = List.nth lines 0 and second = List.nth lines 1 in
  check_contains "first record" first {|"type":"query"|};
  check_contains "first record" first {|"group":"u"|};
  check_contains "first record" first {|"cache":"miss"|};
  check_contains "first record" first {|"stages_ms"|};
  check_contains "first record" first {|"rewrite"|};
  check_contains "second record" second {|"cache":"hit"|};
  (* the cached request did not rewrite again *)
  Alcotest.(check bool) "no rewrite stage in the cached request" false
    (contains second {|"rewrite"|})

let test_height_memo_invalidation_and_override () =
  let metrics = Metrics.create () in
  let tracer = Tracer.create ~metrics () in
  let doc1 = Workload.Fig7.document ~depth:3 in
  let doc2 = Workload.Fig7.document ~depth:4 in
  let q = parse "//b" in
  with_probe tracer (fun () ->
      let pipe = fig7_pipeline () in
      ignore (Secview.Pipeline.Session.answer pipe ~group:"u" q doc1);
      ignore (Secview.Pipeline.Session.answer pipe ~group:"u" q doc2);
      ignore (Secview.Pipeline.Session.answer pipe ~group:"u" q doc2);
      (* caller-supplied height bypasses the memo entirely *)
      ignore (Secview.Pipeline.Session.answer pipe ~group:"u" ~height:9 q doc1));
  Alcotest.(check int) "recomputed when the document changes" 2
    (Metrics.counter metrics "pipeline.height.computed");
  Alcotest.(check int) "memoized across same-document requests" 1
    (Metrics.counter metrics "pipeline.height.memo_hit")

let test_pipeline_stats () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let pipe =
    Secview.Pipeline.Session.create
      (Secview.Pipeline.Service.create dtd
         ~groups:[ ("nurses", spec); ("billing", spec) ])
  in
  let doc = Workload.Hospital.sample_document () in
  let env = Workload.Hospital.nurse_env "6" in
  ignore (Secview.Pipeline.Session.answer pipe ~group:"nurses" ~env (parse "//name") doc);
  ignore (Secview.Pipeline.Session.answer pipe ~group:"nurses" ~env (parse "//name") doc);
  ignore (Secview.Pipeline.Session.answer pipe ~group:"billing" ~env (parse "//bill") doc);
  let per_group = Secview.Pipeline.Session.all_stats pipe in
  Alcotest.(check (list string))
    "per-group stats in construction order" [ "nurses"; "billing" ]
    (List.map fst per_group);
  let nurses : Secview.Pipeline.stats = List.assoc "nurses" per_group in
  let billing : Secview.Pipeline.stats = List.assoc "billing" per_group in
  Alcotest.(check (pair int int)) "nurses translation counters" (1, 1)
    (nurses.hits, nurses.misses);
  Alcotest.(check (pair int int)) "billing translation counters" (0, 1)
    (billing.hits, billing.misses);
  (* the default engine compiles one plan per distinct translation *)
  Alcotest.(check (pair int int)) "nurses plan counters" (1, 1)
    (nurses.plan_hits, nurses.plan_misses);
  Alcotest.(check int) "nurses plans compiled" 1 nurses.plan_compiles;
  Alcotest.(check (pair int int)) "billing plan counters" (0, 1)
    (billing.plan_hits, billing.plan_misses)

(* --- request spans --------------------------------------------------- *)

let test_with_request_hierarchy () =
  let tracer = Tracer.create ~clock:(Clock.fake ()) () in
  let r, spans =
    with_probe tracer (fun () ->
        Tracer.with_request tracer (fun () ->
            Trace.span "outer" (fun () ->
                ignore (Trace.span "inner" (fun () -> ()));
                42)))
  in
  Alcotest.(check int) "result carried through" 42 r;
  Alcotest.(check (list string))
    "root plus descendants, by seq" [ "request"; "outer"; "inner" ]
    (List.map (fun s -> s.Tracer.name) spans);
  (match spans with
  | [ root; outer; inner ] ->
    Alcotest.(check (option int)) "root has no parent" None root.Tracer.parent;
    Alcotest.(check (option int)) "outer's parent is the root"
      (Some root.Tracer.seq) outer.Tracer.parent;
    Alcotest.(check (option int)) "inner's parent is outer"
      (Some outer.Tracer.seq) inner.Tracer.parent;
    Alcotest.(check bool) "one trace id for the whole request" true
      (root.Tracer.trace_id = outer.Tracer.trace_id
      && outer.Tracer.trace_id = inner.Tracer.trace_id)
  | _ -> Alcotest.fail "expected exactly three spans");
  (* non-destructive: the drain watermark did not move, so the audit
     log still gets every span *)
  Alcotest.(check int) "drain_new still sees all spans" 3
    (List.length (Tracer.drain_new tracer))

let test_with_request_isolates_traces () =
  let tracer = Tracer.create ~clock:(Clock.fake ()) () in
  with_probe tracer (fun () ->
      let (), first =
        Tracer.with_request tracer (fun () ->
            ignore (Trace.span "a" (fun () -> ())))
      in
      let (), second =
        Tracer.with_request tracer (fun () ->
            ignore (Trace.span "b" (fun () -> ())))
      in
      Alcotest.(check (list string)) "first request's spans only"
        [ "request"; "a" ]
        (List.map (fun s -> s.Tracer.name) first);
      Alcotest.(check (list string)) "second request's spans only"
        [ "request"; "b" ]
        (List.map (fun s -> s.Tracer.name) second);
      match (first, second) with
      | r1 :: _, r2 :: _ ->
        Alcotest.(check bool) "distinct trace ids" true
          (r1.Tracer.trace_id <> r2.Tracer.trace_id)
      | _ -> Alcotest.fail "missing root spans")

(* --- flight recorder -------------------------------------------------- *)

let flight_entry ~rid ?(status = "ok") () =
  {
    Sobs.Recorder.rid;
    verb = "query";
    session = Some 1;
    peer = Some "tests";
    group = "user";
    doc = Some "d1";
    doc_version = Some 1;
    query = "//a";
    engine = "plan";
    admission = None;
    status;
    error = None;
    results = 2;
    digest = Some (Sobs.Capture.digest [ "<a/>"; "<a/>" ]);
    latency_ms = 0.5;
    gc_pause_ms = 0.;
    gc_pauses = 0;
    ts_ns = 0L;
    spans = [];
    counts = [ ("rows", 2) ];
  }

let test_recorder_ring () =
  (match Sobs.Recorder.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be refused");
  let r = Sobs.Recorder.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Sobs.Recorder.capacity r);
  Sobs.Recorder.record r (flight_entry ~rid:"a" ());
  Sobs.Recorder.record r (flight_entry ~rid:"b" ());
  Sobs.Recorder.record r (flight_entry ~rid:"c" ());
  Alcotest.(check int) "length caps at capacity" 2 (Sobs.Recorder.length r);
  Alcotest.(check int) "total keeps counting" 3 (Sobs.Recorder.total r);
  Alcotest.(check (list string)) "oldest evicted, oldest-first order"
    [ "b"; "c" ]
    (List.map (fun e -> e.Sobs.Recorder.rid) (Sobs.Recorder.entries r));
  let j = Sobs.Recorder.to_json r in
  Alcotest.(check (option int)) "flight field" (Some 2)
    (Option.bind (Json.member "flight" j) Json.to_int_opt);
  Alcotest.(check (option int)) "total field" (Some 3)
    (Option.bind (Json.member "total" j) Json.to_int_opt);
  Sobs.Recorder.clear r;
  Alcotest.(check int) "clear empties the ring" 0 (Sobs.Recorder.length r);
  Alcotest.(check int) "clear keeps the total" 3 (Sobs.Recorder.total r)

let test_recorder_hook () =
  let r = Sobs.Recorder.create ~capacity:4 in
  Alcotest.(check bool) "disabled by default" false (Sobs.Recorder.enabled ());
  Sobs.Recorder.note (flight_entry ~rid:"dropped" ());
  Sobs.Recorder.set r;
  Fun.protect ~finally:Sobs.Recorder.unset (fun () ->
      Alcotest.(check bool) "enabled once hooked" true
        (Sobs.Recorder.enabled ());
      Sobs.Recorder.note (flight_entry ~rid:"kept" ());
      Alcotest.(check (list string)) "only the hooked note landed" [ "kept" ]
        (List.map (fun e -> e.Sobs.Recorder.rid) (Sobs.Recorder.entries r)));
  Alcotest.(check bool) "disabled after unset" false (Sobs.Recorder.enabled ())

let test_recorder_disabled_no_allocation () =
  Sobs.Recorder.unset ();
  Alcotest.(check bool) "disabled" false (Sobs.Recorder.enabled ());
  ignore (Sobs.Recorder.enabled ());
  let n = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    (* the callers' discipline: the entry is only built behind the
       guard, so a disabled recorder costs one ref read per request *)
    if Sobs.Recorder.enabled () then
      Sobs.Recorder.note (flight_entry ~rid:"hot" ())
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "allocation-free when disabled (delta %.0f words for %d \
                     calls)"
       (w1 -. w0) n)
    true
    (w1 -. w0 < 128.)

(* --- capture / replay records ----------------------------------------- *)

let capture_record ~rid =
  {
    Sobs.Capture.c_rid = rid;
    c_verb = "query";
    c_group = "user";
    c_doc = Some "d1";
    c_query = "//a";
    c_bind = [ ("x", "1") ];
    c_index = true;
    c_engine = "plan";
    c_status = "ok";
    c_results = 2;
    c_digest = Sobs.Capture.digest [ "<a/>"; "<a/>" ];
    c_latency_ms = 1.25;
  }

let test_capture_digest () =
  Alcotest.(check string) "empty answer"
    (Digest.to_hex (Digest.string ""))
    (Sobs.Capture.digest []);
  Alcotest.(check string) "lines joined with newline"
    (Digest.to_hex (Digest.string "a\nb"))
    (Sobs.Capture.digest [ "a"; "b" ])

let test_capture_roundtrip () =
  let r = capture_record ~rid:"q1" in
  (match Sobs.Capture.of_json (Sobs.Capture.to_json r) with
  | Ok r' -> Alcotest.(check bool) "json round trip" true (r = r')
  | Error e -> Alcotest.failf "of_json failed: %s" e);
  (* the version field leads, so readers reject foreign formats cheaply *)
  check_contains "record json"
    (Json.to_string (Sobs.Capture.to_json r))
    "{\"v\":2,";
  check_contains "record json"
    (Json.to_string (Sobs.Capture.to_json r))
    "\"verb\":\"query\"";
  (match Sobs.Capture.of_json (Json.Obj [ ("v", Json.Int 99) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future schema version accepted");
  (* version-1 records (no verb field) still read back as queries *)
  (match
     Sobs.Capture.of_json
       (Json.Obj
          [
            ("v", Json.Int 1);
            ("rid", Json.String "old");
            ("group", Json.String "g");
            ("query", Json.String "//a");
            ("digest", Json.String "d");
          ])
   with
  | Ok r1 ->
    Alcotest.(check string) "v1 verb defaults" "query" r1.Sobs.Capture.c_verb
  | Error e -> Alcotest.failf "v1 record rejected: %s" e);
  let path = Filename.temp_file "secview-capture" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w = Sobs.Capture.open_file path in
      Sobs.Capture.write w (capture_record ~rid:"q1");
      Sobs.Capture.write w (capture_record ~rid:"q2");
      Sobs.Capture.close w;
      match Sobs.Capture.read_file path with
      | Ok [ a; b ] ->
        Alcotest.(check string) "first rid" "q1" a.Sobs.Capture.c_rid;
        Alcotest.(check string) "second rid" "q2" b.Sobs.Capture.c_rid
      | Ok rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)
      | Error e -> Alcotest.failf "read_file failed: %s" e)

let test_capture_read_errors () =
  let path = Filename.temp_file "secview-capture" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"v\":1,\"rid\":\"ok\",\"group\":\"g\",\"query\":\"//a\",\"digest\":\"d\"}\nnot json\n";
      close_out oc;
      match Sobs.Capture.read_file path with
      | Error e ->
        check_contains "error names the line" e ":2:"
      | Ok _ -> Alcotest.fail "malformed line accepted")

(* --- the zero-overhead default -------------------------------------- *)

let forty_two () = 42 (* non-capturing: statically allocated closure *)

let test_null_probe_no_allocation () =
  Trace.clear_probe ();
  Trace.clear_audit ();
  Alcotest.(check bool) "probe disabled" false (Trace.enabled ());
  Alcotest.(check bool) "audit disabled" false (Trace.audit_enabled ());
  (* warm up so nothing lazy allocates inside the window *)
  ignore (Trace.span "warm" forty_two);
  Trace.count "warm" 1;
  Trace.value "warm" 1;
  let n = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    ignore (Trace.span "stage" forty_two);
    Trace.count "counter" 1;
    Trace.value "series" 1
  done;
  let w1 = Gc.minor_words () in
  (* one word of slack per ~1000 iterations absorbs the Gc.minor_words
     float boxing itself; any per-call allocation would cost >= n words *)
  Alcotest.(check bool)
    (Printf.sprintf "allocation-free (delta %.0f words for %d calls)"
       (w1 -. w0) n)
    true
    (w1 -. w0 < 128.)

let test_probe_toggling () =
  let tracer = Tracer.create ~clock:(Clock.fake ()) () in
  Tracer.install tracer;
  Alcotest.(check bool) "enabled after install" true (Trace.enabled ());
  Tracer.uninstall ();
  Alcotest.(check bool) "disabled after uninstall" false (Trace.enabled ());
  ignore (Trace.span "ignored" forty_two);
  Alcotest.(check int) "no spans recorded when uninstalled" 0
    (List.length (Tracer.spans tracer))

(* --- runtime health: pause attribution -------------------------------- *)

let test_runtime_overlap_stamping () =
  let rt = Sobs.Runtime.offline () in
  Sobs.Runtime.set rt;
  Fun.protect ~finally:Sobs.Runtime.unset (fun () ->
      (* a STW minor pause lands on both domains' rings with slightly
         skewed windows — union, don't sum *)
      Sobs.Runtime.inject_pause rt ~domain:0 ~kind:Sobs.Runtime.Minor
        ~start_ns:1_000L ~stop_ns:2_000L;
      Sobs.Runtime.inject_pause rt ~domain:1 ~kind:Sobs.Runtime.Minor
        ~start_ns:1_200L ~stop_ns:2_200L;
      (* a later, disjoint major slice on one domain *)
      Sobs.Runtime.inject_pause rt ~domain:0 ~kind:Sobs.Runtime.Major_slice
        ~start_ns:5_000L ~stop_ns:5_500L;
      Alcotest.(check int) "three pauses retained" 3
        (List.length (Sobs.Runtime.pauses rt));
      (* window covering everything: union [1000,2200] + [5000,5500]
         = 1700 ns = 0.0017 ms across 2 disjoint episodes *)
      (match Sobs.Runtime.stamp ~start_ns:0L ~stop_ns:10_000L with
      | Some (ms, episodes) ->
        Alcotest.(check (float 1e-9)) "unioned, not summed" 0.0017 ms;
        Alcotest.(check int) "two disjoint episodes" 2 episodes
      | None -> Alcotest.fail "stamp returned None with a hook installed");
      (* window overlapping only the tail of the first episode *)
      (match Sobs.Runtime.stamp ~start_ns:2_100L ~stop_ns:3_000L with
      | Some (ms, episodes) ->
        Alcotest.(check (float 1e-9)) "clipped to the window" 0.0001 ms;
        Alcotest.(check int) "one episode" 1 episodes
      | None -> Alcotest.fail "stamp returned None with a hook installed");
      (* window touching no pause stamps a measured zero *)
      match Sobs.Runtime.stamp ~start_ns:3_000L ~stop_ns:4_000L with
      | Some (ms, episodes) ->
        Alcotest.(check (float 1e-9)) "no overlap, zero ms" 0. ms;
        Alcotest.(check int) "no episodes" 0 episodes
      | None -> Alcotest.fail "stamp returned None with a hook installed");
  Alcotest.(check bool) "disabled after unset" false (Sobs.Runtime.enabled ());
  (* the registry carries the injected pauses per domain *)
  let snap = Sobs.Metrics.create () in
  Sobs.Runtime.absorb_into ~into:snap rt;
  let count name =
    match
      List.assoc_opt name
        (List.map
           (fun (n, (s : Sobs.Metrics.summary)) -> (n, s.Sobs.Metrics.count))
           (Sobs.Metrics.summaries snap))
    with
    | Some c -> c
    | None -> 0
  in
  Alcotest.(check int) "d0 histogram has both pauses" 2
    (count "gc.pause_seconds.d0");
  Alcotest.(check int) "d1 histogram has its pause" 1
    (count "gc.pause_seconds.d1");
  Alcotest.(check int) "aggregate sees all three" 3 (count "gc.pause_seconds")

let test_runtime_disabled_no_allocation () =
  Sobs.Runtime.unset ();
  Alcotest.(check bool) "disabled" false (Sobs.Runtime.enabled ());
  (* warm up: any lazy setup happens outside the measured window *)
  ignore (Sobs.Runtime.stamp ~start_ns:0L ~stop_ns:0L);
  let n = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    if Sobs.Runtime.enabled () then ignore (Sobs.Runtime.stamp ~start_ns:0L ~stop_ns:0L)
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf
       "allocation-free when disabled (delta %.0f words for %d calls)"
       (w1 -. w0) n)
    true
    (w1 -. w0 < 128.)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "closes on exception" `Quick
            test_span_closes_on_exception;
          Alcotest.test_case "feeds metrics" `Quick test_span_feeds_metrics;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram math" `Quick test_histogram_math;
          Alcotest.test_case "edge cases" `Quick test_histogram_edges;
          Alcotest.test_case "json rendering" `Quick test_metrics_json;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
      ( "audit",
        [ Alcotest.test_case "jsonl golden" `Quick test_audit_golden ] );
      ( "pipeline",
        [
          Alcotest.test_case "spans, counters and audit records" `Quick
            test_pipeline_spans_and_audit;
          Alcotest.test_case "height memo" `Quick
            test_height_memo_invalidation_and_override;
          Alcotest.test_case "aggregate stats" `Quick test_pipeline_stats;
        ] );
      ( "request spans",
        [
          Alcotest.test_case "hierarchy under a synthetic root" `Quick
            test_with_request_hierarchy;
          Alcotest.test_case "traces stay separate" `Quick
            test_with_request_isolates_traces;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring semantics" `Quick test_recorder_ring;
          Alcotest.test_case "global hook" `Quick test_recorder_hook;
          Alcotest.test_case "disabled recorder allocates nothing" `Quick
            test_recorder_disabled_no_allocation;
        ] );
      ( "capture",
        [
          Alcotest.test_case "digest" `Quick test_capture_digest;
          Alcotest.test_case "jsonl round trip" `Quick test_capture_roundtrip;
          Alcotest.test_case "read errors carry file:line" `Quick
            test_capture_read_errors;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "overlap stamping unions pause windows" `Quick
            test_runtime_overlap_stamping;
          Alcotest.test_case "disabled consumer allocates nothing" `Quick
            test_runtime_disabled_no_allocation;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "null probe allocates nothing" `Quick
            test_null_probe_no_allocation;
          Alcotest.test_case "install/uninstall" `Quick test_probe_toggling;
        ] );
    ]
