(* DTD-aware optimization: the three structural constraints of
   Example 5.1, image graphs, the simulation containment test of
   Examples 5.2/5.3, Example 5.4's union pruning, and the Section 6
   query simplifications. *)

module A = Sxpath.Ast
module R = Sdtd.Regex
module Image = Secview.Image
module Simulate = Secview.Simulate
module Optimize = Secview.Optimize

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let e l = R.Elt l
let parse = Sxpath.Parse.of_string
let path_t = Alcotest.testable Sxpath.Print.pp Sxpath.Simplify.equivalent_syntax

let bool3 =
  Alcotest.testable
    (fun ppf v ->
      Format.pp_print_string ppf
        (match v with `True -> "True" | `False -> "False" | `Unknown -> "?"))
    ( = )

(* Example 5.1's three DTDs. *)
let coexist_dtd =
  (* a -> (b, c): both children always exist. *)
  Sdtd.Dtd.create ~root:"r"
    [ ("r", R.Star (e "a")); ("a", R.Seq [ e "b"; e "c" ]); ("b", R.Str);
      ("c", R.Str) ]

let exclusive_dtd =
  (* a -> (b | c): exactly one child. *)
  Sdtd.Dtd.create ~root:"r"
    [ ("r", R.Star (e "a")); ("a", R.Choice [ e "b"; e "c" ]); ("b", R.Str);
      ("c", R.Str) ]

let nonexist_dtd =
  (* b has no c child. *)
  Sdtd.Dtd.create ~root:"r"
    [ ("r", R.Seq [ e "a"; e "b" ]); ("a", e "c"); ("b", e "d");
      ("c", R.Str); ("d", R.Str) ]

let test_coexistence () =
  (* //a[b ∧ c] ≡ //a when a -> (b, c). *)
  Alcotest.check bool3 "[b and c] true at a" `True
    (Image.bool_of_qual coexist_dtd
       (Sxpath.Parse.qual_of_string "b and c")
       "a");
  Alcotest.check path_t "qualifier dropped" (parse "a")
    (Optimize.optimize ~at:"r" coexist_dtd (parse "a[b and c]"))

let test_exclusive () =
  Alcotest.check bool3 "[b and c] false at a" `False
    (Image.bool_of_qual exclusive_dtd
       (Sxpath.Parse.qual_of_string "b and c")
       "a");
  Alcotest.check path_t "query empties" A.Empty
    (Optimize.optimize ~at:"r" exclusive_dtd (parse "a[b and c]"))

let test_exclusive_via_descendants () =
  (* the exclusive rule also fires through // paths *)
  Alcotest.check bool3 "[//b and //c] false at a" `False
    (Image.bool_of_qual exclusive_dtd
       (Sxpath.Parse.qual_of_string "//b and //c")
       "a")

let test_nonexistence () =
  (* (a ∪ b)/c ≡ a/c when b has no c child. *)
  Alcotest.check path_t "dead branch dropped" (parse "a/c")
    (Optimize.optimize nonexist_dtd (parse "(a | b)/c"));
  Alcotest.check bool3 "[c] false at b" `False
    (Image.bool_of_qual nonexist_dtd (Sxpath.Parse.qual_of_string "c") "b")

let test_wildcard_qualifier () =
  (* paper case (7): [*] decided by the production shape *)
  Alcotest.check bool3 "[*] true on concatenation" `True
    (Image.bool_of_qual coexist_dtd (Sxpath.Parse.qual_of_string "*") "a");
  Alcotest.check bool3 "[*] true on disjunction" `True
    (Image.bool_of_qual exclusive_dtd (Sxpath.Parse.qual_of_string "*") "a");
  Alcotest.check bool3 "[*] false on PCDATA" `False
    (Image.bool_of_qual coexist_dtd (Sxpath.Parse.qual_of_string "*") "b")

(* ---- Example 5.2 / 5.3: the diamond DTD and simulation ------------- *)

(* Fig. 9 (a): a -> (b?, c...) — reconstructed as
   a -> (b | c), d through e|f to g, such that
   p1 = a[b]/*/d/*/g etc. make sense.  We follow the figure: a has
   children b and c; b and c have d; d has e and f; e and f have g. *)
let diamond_dtd =
  Sdtd.Dtd.create ~root:"top"
    [
      ("top", e "a");
      ("a", R.Seq [ e "b"; e "c" ]);
      ("b", e "d");
      ("c", e "d");
      ("d", R.Seq [ e "e"; e "f" ]);
      ("e", e "g");
      ("f", e "g");
      ("g", R.Str);
    ]

let p1 = parse "a[b]/*/d/*/g"
let p2 = parse "a[b]/(b | c)/d/(e | f)/g"
let p3 = parse "a[b]/b/d/e/g | a/b/d/f/g"

let test_simulation_containment_5_3 () =
  let c p q = Simulate.contained diamond_dtd p q "top" in
  Alcotest.(check bool) "p2 contained in p1" true (c p2 p1);
  Alcotest.(check bool) "p3 contained in p1" true (c p3 p1);
  Alcotest.(check bool) "p3 contained in p2" true (c p3 p2);
  (* the approximate direction: p2 ⊆ p3 holds semantically here but
     simulation cannot see it *)
  Alcotest.(check bool) "p2 in p3 not detected (approximation)" false
    (c p2 p3)

let test_union_pruned_by_containment () =
  Alcotest.check path_t "p2 ∪ p1 collapses to p1"
    (Optimize.optimize ~at:"top" diamond_dtd p1)
    (Optimize.optimize ~at:"top" diamond_dtd (A.Union (p2, p1)))

let test_containment_soundness_on_instances () =
  (* Whenever the test claims containment, instance-level containment
     must hold. *)
  let docs =
    List.map
      (fun seed ->
        Sdtd.Gen.generate
          ~config:{ Sdtd.Gen.default_config with seed }
          diamond_dtd)
      [ 0; 1; 2 ]
  in
  let queries = [ p1; p2; p3; parse "a/*"; parse "//g"; parse "a/b//g" ] in
  List.iter
    (fun q1 ->
      List.iter
        (fun q2 ->
          if Simulate.contained diamond_dtd q1 q2 "top" then
            List.iter
              (fun doc ->
                let set p =
                  List.map
                    (fun n -> n.Sxml.Tree.id)
                    (eval p doc)
                in
                let s1 = set q1 and s2 = set q2 in
                Alcotest.(check bool)
                  (Printf.sprintf "%s ⊆ %s on instance"
                     (Sxpath.Print.to_string q1) (Sxpath.Print.to_string q2))
                  true
                  (List.for_all (fun x -> List.mem x s2) s1))
              docs)
        queries)
    queries

(* ---- Example 5.4 ---------------------------------------------------- *)

let test_example_5_4 () =
  let dtd = Workload.Hospital.dtd in
  let p =
    parse "//patient | //(patient | staff)[//medication]"
  in
  let po = Optimize.optimize dtd p in
  (* the second branch is contained in the first: //patient absorbs it *)
  Alcotest.check path_t "collapses to the expansion of //patient"
    (Optimize.optimize dtd (parse "//patient"))
    po;
  (* and the expansion is the precise path of Example 5.4 *)
  Alcotest.check path_t "hospital/dept expansion"
    (parse "dept/(clinicalTrial | .)/patientInfo/patient")
    po

let test_descendant_expansion () =
  let dtd = Workload.Hospital.dtd in
  Alcotest.check path_t "//medication expands"
    (parse "dept/(clinicalTrial | .)/patientInfo/patient/treatment/regular/\
            medication")
    (Optimize.optimize dtd (parse "//medication"))

let test_recursive_dtd_keeps_descendant () =
  let dtd = Workload.Fig7.dtd in
  let po = Optimize.optimize dtd (parse "//b") in
  Alcotest.(check bool) "still uses //" true
    (let rec has_dslash = function
       | A.Dslash _ -> true
       | A.Slash (a, b) | A.Union (a, b) -> has_dslash a || has_dslash b
       | A.Qualify (a, _) -> has_dslash a
       | A.Empty | A.Eps | A.Label _ | A.Wildcard | A.Attribute _ -> false
     in
     has_dslash po);
  (* but impossible descendants still die *)
  Alcotest.check path_t "unsatisfiable descendant" A.Empty
    (Optimize.optimize dtd (parse "//zz"))

(* ---- Section 6 simplifications -------------------------------------- *)

let test_adex_q3_q4 () =
  let dtd = Workload.Adex.dtd in
  let view = Workload.Adex.view () in
  let rw q = Secview.Rewrite.rewrite view q in
  Alcotest.check path_t "Q3: co-existence drops the qualifier"
    (parse "head/buyer-info")
    (Optimize.optimize dtd (rw Workload.Adex.q3));
  Alcotest.check path_t "Q4 empties" A.Empty
    (Optimize.optimize dtd (rw Workload.Adex.q4));
  Alcotest.check path_t "exclusive form of Q4 empties" A.Empty
    (Optimize.optimize dtd
       (parse
          "//real-estate[house/r-e.asking-price and apartment/r-e.unit-type]"))

let test_optimize_preserves_hospital_answers () =
  let dtd = Workload.Hospital.dtd in
  let doc = Workload.Hospital.sample_document () in
  List.iter
    (fun q ->
      let p = parse q in
      let po = Optimize.optimize dtd p in
      let ids p =
        List.map (fun n -> n.Sxml.Tree.id) (eval p doc)
      in
      Alcotest.(check (list int)) ("equivalent: " ^ q) (ids p) (ids po))
    [
      "//patient/name";
      "//patient[treatment/trial]/name";
      "//staff/*";
      "dept/patientInfo | dept/staffInfo";
      "//patient[name and wardNo]";
      "//dept//bill";
      "//*[medication]";
      "dept[staffInfo]/patientInfo";
      "//treatment[trial and regular]";
    ]

(* ---- image graphs ---------------------------------------------------- *)

let test_image_basic () =
  (match Image.image coexist_dtd (parse "a/b") "r" with
  | None -> Alcotest.fail "image should exist"
  | Some g ->
    Alcotest.(check string) "root label" "r" g.Image.root.Image.label;
    Alcotest.(check (list string)) "frontier" [ "b" ]
      (List.map (fun n -> n.Image.label) g.Image.frontier));
  Alcotest.(check bool) "empty image for impossible path" true
    (Image.image coexist_dtd (parse "a/zz") "r" = None)

let test_image_prunes_dead_branches () =
  match Image.image nonexist_dtd (parse "(a | b)/c") "r" with
  | None -> Alcotest.fail "image should exist"
  | Some g ->
    (* the b branch dies: no b node should survive pruning *)
    let labels =
      let seen = Hashtbl.create 8 in
      let rec go (n : Image.node) =
        if not (Hashtbl.mem seen n.Image.id) then begin
          Hashtbl.add seen n.Image.id ();
          Hashtbl.replace seen n.Image.id ();
          List.iter go n.Image.kids
        end
      in
      go g.Image.root;
      Hashtbl.length seen
    in
    Alcotest.(check bool) "small graph" true (labels <= 3)

let test_image_reach () =
  Alcotest.(check (list string)) "reach of (a|b)/c" [ "c" ]
    (Image.reach nonexist_dtd (parse "(a | b)/c") "r");
  Alcotest.(check bool) "descendants include self" true
    (List.mem "r" (Image.descendant_or_self_types nonexist_dtd "r"))

let test_guaranteed () =
  Alcotest.(check bool) "b guaranteed under a" true
    (Image.guaranteed coexist_dtd (parse "b") "a");
  Alcotest.(check bool) "b not guaranteed under choice" false
    (Image.guaranteed exclusive_dtd (parse "b") "a");
  Alcotest.(check bool) "b or c guaranteed under choice" true
    (Image.guaranteed exclusive_dtd (parse "b | c") "a");
  Alcotest.(check bool) "eps always guaranteed" true
    (Image.guaranteed coexist_dtd A.Eps "a");
  Alcotest.(check bool) "starred child not guaranteed" false
    (Image.guaranteed coexist_dtd (parse "a") "r")

let test_requires_child () =
  Alcotest.(check bool) "label" true (Image.requires_child (parse "b"));
  Alcotest.(check bool) "eps" false (Image.requires_child A.Eps);
  Alcotest.(check bool) "descendant label" true
    (Image.requires_child (parse "//b"));
  Alcotest.(check bool) "descendant eps" false
    (Image.requires_child (parse "//."));
  Alcotest.(check bool) "union needs both" false
    (Image.requires_child (parse "b | ."))

let test_simplify_qual () =
  Alcotest.(check bool) "decided true" true
    (Optimize.simplify_qual coexist_dtd "a"
       (Sxpath.Parse.qual_of_string "b and c")
    = A.True);
  Alcotest.(check bool) "conjunct absorbed" true
    (let q =
       Optimize.simplify_qual diamond_dtd "top"
         (A.And (A.Exists p3, A.Exists p1))
     in
     A.qual_size q < A.qual_size (A.And (A.Exists p3, A.Exists p1)))

(* ---- coarse mode on recursive document DTDs -------------------------- *)

let test_xmark_optimize_equivalence () =
  (* the recursive auction DTD forces the optimizer's coarse fallback;
     answers must still be preserved *)
  let dtd = Workload.Xmark.dtd in
  let doc = Workload.Xmark.document ~seed:21 ~scale:3 () in
  List.iter
    (fun q ->
      let p = parse q in
      let po = Optimize.optimize dtd p in
      let ids p =
        List.map (fun (n : Sxml.Tree.t) -> n.id) (eval p doc)
      in
      Alcotest.(check (list int)) ("xmark equivalent: " ^ q) (ids p) (ids po))
    [
      "//listitem//text";
      "//person[creditcard]/name";
      "//description//parlist";
      "//open-auction/bidder | //closed-auction";
      "regions//item[payment]/name";
      "//parlist[listitem]//text";
    ]

let test_bool_of_qual_boolean_operators () =
  Alcotest.check bool3 "or of false and true" `True
    (Image.bool_of_qual exclusive_dtd
       (Sxpath.Parse.qual_of_string "b or not(b and c)")
       "a");
  Alcotest.check bool3 "not of exclusive-false" `True
    (Image.bool_of_qual exclusive_dtd
       (Sxpath.Parse.qual_of_string "not(b and c)")
       "a");
  Alcotest.check bool3 "or of two unknowns" `Unknown
    (Image.bool_of_qual exclusive_dtd
       (Sxpath.Parse.qual_of_string "b or c")
       "a");
  (* b or c is in fact guaranteed under a choice — Exists-level
     reasoning sees it, boolean-Or does not (documented asymmetry) *)
  Alcotest.check bool3 "union path is guaranteed" `True
    (Image.bool_of_qual exclusive_dtd
       (Sxpath.Parse.qual_of_string "(b | c)")
       "a")

let test_optimize_idempotent_semantically () =
  let dtd = Workload.Hospital.dtd in
  let doc = Workload.Hospital.sample_document () in
  List.iter
    (fun q ->
      let p1 = Optimize.optimize dtd (parse q) in
      let p2 = Optimize.optimize dtd p1 in
      let ids p =
        List.map (fun (n : Sxml.Tree.t) -> n.id) (eval p doc)
      in
      Alcotest.(check (list int)) ("idempotent on " ^ q) (ids p1) (ids p2))
    [ "//patient[name]"; "//dept//bill"; "//staff/* | //patient" ]

let test_attribute_paths_left_alone () =
  let dtd = Workload.Hospital.dtd in
  let p = parse "//patient[@accessibility = \"1\"]" in
  let po = Optimize.optimize dtd p in
  Alcotest.(check bool) "attribute qualifier survives" true
    (Sxpath.Ast.mem_attribute po
    ||
    (* or the whole qualifier was kept opaque *)
    String.length (Sxpath.Print.to_string po) > 0)

let () =
  Alcotest.run "optimize"
    [
      ( "dtd-constraints",
        [
          Alcotest.test_case "co-existence" `Quick test_coexistence;
          Alcotest.test_case "exclusive" `Quick test_exclusive;
          Alcotest.test_case "exclusive via //" `Quick
            test_exclusive_via_descendants;
          Alcotest.test_case "non-existence" `Quick test_nonexistence;
          Alcotest.test_case "wildcard qualifier" `Quick
            test_wildcard_qualifier;
        ] );
      ( "containment",
        [
          Alcotest.test_case "Example 5.3 simulations" `Quick
            test_simulation_containment_5_3;
          Alcotest.test_case "union pruning" `Quick
            test_union_pruned_by_containment;
          Alcotest.test_case "soundness on instances" `Quick
            test_containment_soundness_on_instances;
        ] );
      ( "expansion",
        [
          Alcotest.test_case "Example 5.4" `Quick test_example_5_4;
          Alcotest.test_case "descendant expansion" `Quick
            test_descendant_expansion;
          Alcotest.test_case "recursive DTDs keep //" `Quick
            test_recursive_dtd_keeps_descendant;
        ] );
      ( "section-6",
        [
          Alcotest.test_case "Q3/Q4 simplifications" `Quick test_adex_q3_q4;
          Alcotest.test_case "hospital equivalence" `Quick
            test_optimize_preserves_hospital_answers;
        ] );
      ( "coarse-and-misc",
        [
          Alcotest.test_case "xmark equivalence (coarse mode)" `Quick
            test_xmark_optimize_equivalence;
          Alcotest.test_case "boolean operators" `Quick
            test_bool_of_qual_boolean_operators;
          Alcotest.test_case "semantic idempotence" `Quick
            test_optimize_idempotent_semantically;
          Alcotest.test_case "attribute paths" `Quick
            test_attribute_paths_left_alone;
        ] );
      ( "images",
        [
          Alcotest.test_case "basic construction" `Quick test_image_basic;
          Alcotest.test_case "dead-branch pruning" `Quick
            test_image_prunes_dead_branches;
          Alcotest.test_case "reach" `Quick test_image_reach;
          Alcotest.test_case "guaranteed" `Quick test_guaranteed;
          Alcotest.test_case "requires_child" `Quick test_requires_child;
          Alcotest.test_case "simplify_qual" `Quick test_simplify_qual;
        ] );
    ]
