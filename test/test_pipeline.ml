(* The Pipeline Service/Session split: multi-group setup, translation
   caching, recursive-view handling, stored-view loading. *)

module Pipeline = Secview.Pipeline
module Spec = Secview.Spec

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let parse = Sxpath.Parse.of_string

let hospital_service () =
  let dtd = Workload.Hospital.dtd in
  let nurses = Workload.Hospital.nurse_spec dtd in
  let billing =
    Spec.of_sidecar dtd
      "dept staffInfo N\ndept clinicalTrial N\nclinicalTrial patientInfo Y\n"
  in
  Pipeline.Service.create dtd
    ~groups:[ ("nurses", nurses); ("billing", billing) ]

let test_groups () =
  let p = hospital_service () in
  Alcotest.(check (list string)) "groups in order"
    [ "nurses"; "billing" ]
    (List.map (fun g -> g.Pipeline.name) (Pipeline.Service.groups p));
  Alcotest.(check bool) "nurse view DTD hides clinicalTrial" false
    (Sdtd.Dtd.mem (Pipeline.Service.view_dtd p ~group:"nurses") "clinicalTrial");
  Alcotest.(check bool) "unknown group raises" true
    (match Pipeline.Service.view_dtd p ~group:"zz" with
    | exception Not_found -> true
    | _ -> false)

let test_rejects_foreign_spec () =
  let dtd = Workload.Hospital.dtd in
  let other_dtd = Workload.Adex.dtd in
  Alcotest.(check bool) "spec over another DTD rejected" true
    (match
       Pipeline.Service.create dtd
         ~groups:[ ("x", Workload.Adex.spec) ]
     with
    | exception Invalid_argument _ -> true
    | _ ->
      ignore other_dtd;
      false)

let test_translation_and_cache () =
  let p = Pipeline.Session.create (hospital_service ()) in
  let q = parse "//patient//bill" in
  let t1 = Pipeline.Session.translate p ~group:"nurses" q in
  let t2 = Pipeline.Session.translate p ~group:"nurses" q in
  Alcotest.(check bool) "same translation" true (Sxpath.Ast.equal_path t1 t2);
  let s : Pipeline.stats = Pipeline.Session.stats_of p ~group:"nurses" in
  Alcotest.(check int) "one miss" 1 s.misses;
  Alcotest.(check int) "one hit" 1 s.hits;
  (* translate alone never touches the plan cache *)
  Alcotest.(check int) "no plan lookups" 0 (s.plan_hits + s.plan_misses);
  (* groups have independent caches *)
  let s' : Pipeline.stats = Pipeline.Session.stats_of p ~group:"billing" in
  Alcotest.(check int) "billing untouched" 0 s'.hits

let test_answers_match_manual_pipeline () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let p =
    Pipeline.Session.create (Pipeline.Service.create dtd ~groups:[ ("nurses", spec) ])
  in
  let doc = Workload.Hospital.sample_document () in
  let env = Workload.Hospital.nurse_env "6" in
  let q = parse "//patient/name" in
  let via_pipeline =
    List.map Sxml.Tree.string_value
      (Pipeline.Session.answer_exn p ~group:"nurses" ~env q doc)
  in
  let manual =
    let view = Secview.Derive.derive spec in
    let pt = Secview.Optimize.optimize dtd (Secview.Rewrite.rewrite view q) in
    List.map Sxml.Tree.string_value (eval ~env pt doc)
  in
  Alcotest.(check (list string)) "pipeline = manual" manual via_pipeline

let test_recursive_group () =
  let dtd = Workload.Xmark.dtd in
  let p =
    Pipeline.Session.create
      (Pipeline.Service.create dtd ~groups:[ ("buyers", Workload.Xmark.spec) ])
  in
  let doc = Workload.Xmark.document ~seed:3 ~scale:3 () in
  (* answer computes the height itself *)
  let names =
    Pipeline.Session.answer_exn p ~group:"buyers" (parse "//person/name") doc
  in
  Alcotest.(check bool) "answers arrive" true (names <> []);
  (* translate without a height must refuse on a recursive view *)
  Alcotest.(check bool) "translate needs height" true
    (match Pipeline.Session.translate p ~group:"buyers" (parse "//name") with
    | exception Secview.Rewrite.Unsupported _ -> true
    | _ -> false);
  (* different heights are cached separately *)
  ignore (Pipeline.Session.translate p ~group:"buyers" ~height:5 (parse "//name"));
  ignore (Pipeline.Session.translate p ~group:"buyers" ~height:7 (parse "//name"));
  let s : Pipeline.stats = Pipeline.Session.stats_of p ~group:"buyers" in
  Alcotest.(check bool) "separate cache entries per height" true (s.misses >= 3)

let test_with_stored_views () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let view = Secview.Derive.derive spec in
  let reloaded =
    Secview.View.of_definition (Secview.View.to_definition view)
  in
  let p =
    Pipeline.Session.create
      (Pipeline.Service.create_with_views dtd ~groups:[ ("nurses", reloaded) ])
  in
  let doc = Workload.Hospital.sample_document () in
  let env = Workload.Hospital.nurse_env "6" in
  Alcotest.(check int) "stored view answers" 3
    (List.length
       (Pipeline.Session.answer_exn p ~group:"nurses" ~env
          (parse "//patient/name") doc))

let test_indexed_answers () =
  let dtd = Workload.Adex.dtd in
  let p =
    Pipeline.Session.create
      (Pipeline.Service.create dtd ~groups:[ ("re", Workload.Adex.spec) ])
  in
  let doc = Workload.Adex.document ~ads:10 ~buyers:5 () in
  let idx = Sxml.Index.build doc in
  let q = Workload.Adex.q1 in
  Alcotest.(check int) "indexed = plain"
    (List.length (Pipeline.Session.answer_exn p ~group:"re" q doc))
    (List.length (Pipeline.Session.answer_exn p ~group:"re" ~index:idx q doc))

let () =
  Alcotest.run "pipeline"
    [
      ( "setup",
        [
          Alcotest.test_case "groups" `Quick test_groups;
          Alcotest.test_case "foreign specs rejected" `Quick
            test_rejects_foreign_spec;
          Alcotest.test_case "stored views" `Quick test_with_stored_views;
        ] );
      ( "answering",
        [
          Alcotest.test_case "translation cache" `Quick
            test_translation_and_cache;
          Alcotest.test_case "matches manual pipeline" `Quick
            test_answers_match_manual_pipeline;
          Alcotest.test_case "recursive group" `Quick test_recursive_group;
          Alcotest.test_case "indexed answers" `Quick test_indexed_answers;
        ] );
    ]
