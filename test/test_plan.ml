(* The compiled-plan executor (Splan) against the interpreter: the
   two engines must agree byte for byte on every query both can run.
   Hand-picked interval-join edge cases first, then a seeded
   differential fuzz over the workload documents. *)

module A = Sxpath.Ast

let parse = Sxpath.Parse.of_string

let interp ?env p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ~root:doc ()) p

let render ns =
  String.concat "\n" (List.map (fun n -> Sxml.Print.to_string n) ns)

(* compile-or-fail, so edge-case tests prove the query is *inside*
   the plan fragment as well as correctly answered *)
let plan_run ?env ~index p doc =
  match Splan.Compile.compile p with
  | Error reason ->
    Alcotest.failf "planner refused %s: %s" (Sxpath.Print.to_string p) reason
  | Ok c -> Splan.Exec.run c ~index ?env doc

let check_same ?env ~index doc what p =
  Alcotest.(check string)
    (what ^ ": plan = interpreter")
    (render (interp ?env p doc))
    (render (plan_run ?env ~index p doc))

(* --- interval-join edge cases --------------------------------------- *)

let edge_doc () =
  let open Sxml.Tree in
  of_spec
    (elem "r"
       [
         elem "a" ~attrs:[ ("id", "1") ]
           [
             elem "b" [ text "b1" ];
             elem "c" [ elem "b" [ text "b2" ] ];
             elem "a" ~attrs:[ ("id", "2") ] [ elem "b" [ text "b3" ] ];
           ];
         elem "b" [ text "b4" ];
         elem "a" ~attrs:[ ("id", "3") ] [];
         elem "r" [ elem "b" [ text "b5" ] ];
       ])

let test_edge_cases () =
  let doc = edge_doc () in
  let index = Sxml.Index.build doc in
  List.iter
    (fun q -> check_same ~index doc q (parse q))
    [
      (* the root context: //r must range over strict descendants, so
         the context element itself never answers *)
      "//r";
      "//r/b";
      (* a tag absent from the document: empty per-tag id array *)
      "//zz";
      "zz";
      "//a/zz";
      (* nested descendant steps; the inner context set is a mix of
         nested and disjoint subtrees *)
      "//a//b";
      "//a//a";
      "//b//b";
      (* child steps from interleaved nested contexts must come back
         in document order, duplicate-free *)
      "//a/b";
      "//a/*";
      "(a | a/a)/b";
      "//b | a/b";
      ".";
      "a/.";
      (* attribute steps yield values, not nodes: mid-path they are
         dropped, top-level they make the answer empty *)
      "a/@id";
      "a/@id/b";
      (* qualifiers: existence, equality, attributes, negation *)
      "a[b]";
      "a[zz]";
      "a[.//b]";
      "a[@id = \"1\"]/b";
      "a[@id = \"9\"]/b";
      "a[b = \"b1\"]";
      "a[c/b = \"b2\"]";
      "a[b and not(zz)]";
      "a[b or zz]/a";
      "//a[a[b]]";
    ]

let test_variables () =
  let doc = edge_doc () in
  let index = Sxml.Index.build doc in
  let env name = if name = "x" then Some "b1" else None in
  check_same ~env ~index doc "bound variable" (parse "a[b = $x]/b");
  (* both engines raise on a variable the qualifier actually needs *)
  let p = parse "a[b = $zz]" in
  let raises f =
    match f () with
    | exception Sxpath.Eval.Unbound_variable "zz" -> true
    | _ -> false
  in
  Alcotest.(check bool) "interpreter raises" true
    (raises (fun () -> interp ~env p doc));
  Alcotest.(check bool) "plan raises" true
    (raises (fun () -> plan_run ~env ~index p doc))

let test_refusals () =
  List.iter
    (fun q ->
      match Splan.Compile.compile (parse q) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should be outside the plan fragment" q)
    [ "//*"; "//."; "//(a | b)"; "//@id"; "a//*" ];
  List.iter
    (fun q ->
      match Splan.Compile.compile (parse q) with
      | Ok _ -> ()
      | Error reason -> Alcotest.failf "%s refused: %s" q reason)
    [ "//a"; "//a[b = $x]/c"; "a/*"; "(a | b)/c"; "//a//b" ]

(* --- seeded differential fuzz --------------------------------------- *)

(* labels and attribute names actually occurring in [doc], so random
   queries hit non-empty answers often enough to be interesting *)
let vocabulary doc =
  let tags = Hashtbl.create 16 and attrs = Hashtbl.create 16 in
  Sxml.Tree.iter
    (fun n ->
      match n.Sxml.Tree.desc with
      | Sxml.Tree.Element e ->
        Hashtbl.replace tags e.Sxml.Tree.tag ();
        List.iter (fun (a, _) -> Hashtbl.replace attrs a ()) e.Sxml.Tree.attrs
      | Sxml.Tree.Text _ -> ())
    doc;
  let keys h = Hashtbl.fold (fun k () acc -> k :: acc) h [] in
  (Array.of_list (List.sort compare (keys tags) @ [ "zz" ]),
   Array.of_list (List.sort compare (keys attrs) @ [ "zz" ]))

let pick st arr = arr.(Random.State.int st (Array.length arr))

let rec gen_path st ~tags ~attrs depth =
  let leaf () =
    match Random.State.int st 8 with
    | 0 -> A.Eps
    | 1 -> A.Wildcard
    | 2 -> A.Attribute (pick st attrs)
    | _ -> A.Label (pick st tags)
  in
  if depth = 0 then leaf ()
  else
    match Random.State.int st 10 with
    | 0 | 1 | 2 ->
      A.Slash
        (gen_path st ~tags ~attrs (depth - 1),
         gen_path st ~tags ~attrs (depth - 1))
    (* keep descendant heads labeled so the planner accepts most
       generated queries; refusals are still exercised via Wildcard
       and Eps leaves reached below a Dslash *)
    | 3 | 4 ->
      A.Dslash
        (A.Slash (A.Label (pick st tags), gen_path st ~tags ~attrs (depth - 1)))
    | 5 -> A.Dslash (A.Label (pick st tags))
    | 6 ->
      A.Union
        (gen_path st ~tags ~attrs (depth - 1),
         gen_path st ~tags ~attrs (depth - 1))
    | 7 | 8 ->
      A.Qualify
        (gen_path st ~tags ~attrs (depth - 1), gen_qual st ~tags ~attrs 1)
    | _ -> leaf ()

and gen_qual st ~tags ~attrs depth =
  if depth = 0 then A.Exists (gen_path st ~tags ~attrs 1)
  else
    match Random.State.int st 8 with
    | 0 ->
      A.Eq
        (gen_path st ~tags ~attrs 1,
         (* every generated variable is bound by the fuzz env: plan
            probes short-circuit, so an unbound variable would be an
            allowed (but flaky) divergence — see Splan.Exec *)
         if Random.State.bool st then A.Var (pick st [| "x"; "y" |])
         else A.Const (pick st [| "b1"; "25000"; "" |]))
    | 1 ->
      A.And (gen_qual st ~tags ~attrs (depth - 1), gen_qual st ~tags ~attrs 0)
    | 2 ->
      A.Or (gen_qual st ~tags ~attrs (depth - 1), gen_qual st ~tags ~attrs 0)
    | 3 -> A.Not (gen_qual st ~tags ~attrs (depth - 1))
    | _ -> A.Exists (gen_path st ~tags ~attrs 1)

let fuzz_doc_cases =
  [
    ("edge", fun () -> edge_doc ());
    ("hospital", Workload.Hospital.sample_document);
    ("adex", fun () -> Workload.Adex.document ~seed:11 ~ads:8 ~buyers:4 ());
    ("xmark", fun () -> Workload.Xmark.document ~seed:5 ~scale:4 ());
  ]

let test_fuzz () =
  let env name =
    match name with "x" -> Some "b1" | "y" -> Some "25000" | _ -> None
  in
  let st = Random.State.make [| 0x5ec71e4 |] in
  List.iter
    (fun (dname, make_doc) ->
      let doc = make_doc () in
      let index = Sxml.Index.build doc in
      let tags, attrs = vocabulary doc in
      let compiled = ref 0 and refused = ref 0 in
      for _ = 1 to 400 do
        let p = gen_path st ~tags ~attrs 3 in
        match Splan.Compile.compile p with
        | Error _ -> incr refused
        | Ok c ->
          incr compiled;
          let got = render (Splan.Exec.run c ~index ~env doc) in
          let want = render (interp ~env p doc) in
          if not (String.equal got want) then
            Alcotest.failf "%s: engines disagree on %s" dname
              (Sxpath.Print.to_string p)
      done;
      (* the generator must actually exercise the plan path *)
      Alcotest.(check bool)
        (dname ^ ": most generated queries compile")
        true
        (!compiled > 3 * !refused) )
    fuzz_doc_cases

(* --- through the pipeline ------------------------------------------- *)

let test_pipeline_engines_agree () =
  let dtd = Workload.Adex.dtd in
  let pipe =
    Secview.Pipeline.Session.create
      (Secview.Pipeline.Service.create dtd ~groups:[ ("re", Workload.Adex.spec) ])
  in
  let doc = Workload.Adex.document ~seed:7 ~ads:10 ~buyers:5 () in
  List.iter
    (fun (name, q) ->
      let a =
        render
          (Secview.Pipeline.Session.answer_exn pipe ~group:"re"
             ~engine:Secview.Pipeline.Interp q doc)
      in
      let b =
        render
          (Secview.Pipeline.Session.answer_exn pipe ~group:"re"
             ~engine:Secview.Pipeline.Plan q doc)
      in
      Alcotest.(check string) (name ^ ": engines agree") a b)
    Workload.Adex.queries;
  let s : Secview.Pipeline.stats =
    Secview.Pipeline.Session.stats_of pipe ~group:"re"
  in
  (* only the Plan calls consult the plan cache *)
  Alcotest.(check int) "one plan lookup per Plan call"
    (List.length Workload.Adex.queries)
    (s.plan_hits + s.plan_misses);
  Alcotest.(check int) "every translation planned once"
    (s.plan_compiles + s.plan_fallbacks)
    s.plan_misses

let test_pipeline_fallback_transparent () =
  (* the rewriter only emits label-headed paths, so every translated
     query is inside the plan fragment: compile refusals (SV301) can
     hit ad-hoc Splan users but never the pipeline.  The fallback
     that IS reachable through the pipeline is a context node that is
     not an indexed document root — it runs the interpreter and must
     leave the plan cache untouched. *)
  let dtd = Workload.Hospital.dtd in
  let pipe =
    Secview.Pipeline.Session.create
      (Secview.Pipeline.Service.create dtd
         ~groups:[ ("all", Secview.Spec.make dtd []) ])
  in
  let doc = Workload.Hospital.sample_document () in
  List.iter
    (fun q ->
      ignore (Secview.Pipeline.Session.answer_exn pipe ~group:"all" (parse q) doc))
    [ "//*"; "//."; "//bill"; "//*[bill]"; "dept[.//bill]" ];
  let s : Secview.Pipeline.stats =
    Secview.Pipeline.Session.stats_of pipe ~group:"all"
  in
  let open Secview.Pipeline in
  Alcotest.(check int) "rewritten queries never refused" 0 s.plan_fallbacks;
  Alcotest.(check int) "every miss compiled" s.plan_misses s.plan_compiles;
  let lookups = s.plan_hits + s.plan_misses in
  (* a non-root context: both engines answer via the interpreter
     (translated queries are root-relative, so the answer happens to
     be empty here — what matters is that the engines agree with the
     direct interpretation and never consult the plan cache) *)
  let sub = List.hd (interp (parse "dept") doc) in
  let q = parse "dept/patientInfo/patient" in
  let direct = render (interp (Session.translate pipe ~group:"all" q) sub) in
  let a = render (Session.answer_exn pipe ~group:"all" ~engine:Interp q sub) in
  let b = render (Session.answer_exn pipe ~group:"all" ~engine:Plan q sub) in
  Alcotest.(check string) "interp engine = direct interpretation" direct a;
  Alcotest.(check string) "non-root context answers agree" a b;
  let s' : stats = Session.stats_of pipe ~group:"all" in
  Alcotest.(check int) "plan cache not consulted for non-root contexts"
    lookups
    (s'.plan_hits + s'.plan_misses)

let () =
  Alcotest.run "plan"
    [
      ( "compile",
        [ Alcotest.test_case "fragment boundary" `Quick test_refusals ] );
      ( "exec",
        [
          Alcotest.test_case "interval-join edge cases" `Quick
            test_edge_cases;
          Alcotest.test_case "variables" `Quick test_variables;
          Alcotest.test_case "differential fuzz" `Quick test_fuzz;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "engines agree" `Quick
            test_pipeline_engines_agree;
          Alcotest.test_case "fallback transparent" `Quick
            test_pipeline_fallback_transparent;
        ] );
    ]
