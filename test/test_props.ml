(* End-to-end randomized properties over random DTDs, access
   specifications, documents and queries:

   - derived views are sound and complete w.r.t. node accessibility
     (Theorem 3.2's characterization, checked against the
     materialization semantics);
   - query rewriting is equivalent to querying the materialized view
     (Theorem 4.1, in the precise mode);
   - DTD-aware optimization preserves query answers;
   - the approximate containment test is sound on instances
     (Proposition 5.1). *)

module A = Sxpath.Ast
module R = Sdtd.Regex
module Spec = Secview.Spec
module View = Secview.View
module Derive = Secview.Derive
module Rewrite = Secview.Rewrite
module Optimize = Secview.Optimize
module Simulate = Secview.Simulate
module Materialize = Secview.Materialize
module Access = Secview.Access

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let type_name i = Printf.sprintf "t%d" i

(* Random normal-form DTDs, generated as DAGs (type i only references
   types > i) with PCDATA leaves, so they are always consistent. *)
let gen_dtd : Sdtd.Dtd.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 4 9 in
  let production i =
    if i >= n - 1 then return R.Str
    else
      let deeper = int_range (i + 1) (n - 1) in
      let child = map (fun j -> R.Elt (type_name j)) deeper in
      oneof
        [
          return R.Str;
          map R.star child;
          (let* k = int_range 1 3 in
           let* cs = list_repeat k child in
           return (R.seq cs));
          (let* k = int_range 2 3 in
           let* cs = list_repeat k child in
           match R.choice cs with
           | R.Choice _ as c -> return c
           | single -> return single);
        ]
  in
  let* prods =
    flatten_l (List.init n (fun i -> map (fun p -> (type_name i, p)) (production i)))
  in
  return (Sdtd.Dtd.restrict_reachable (Sdtd.Dtd.create ~root:"t0" prods))

(* Random access specification over a DTD's edges. *)
let gen_spec dtd : Spec.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let edges =
    List.concat_map
      (fun a -> List.map (fun b -> (a, b)) (Sdtd.Dtd.children_of dtd a))
      (Sdtd.Dtd.reachable dtd)
  in
  let annot (a, _b) =
    let qual =
      let labels = Sdtd.Dtd.children_of dtd a in
      let candidates = if labels = [] then [ "zz" ] else labels in
      oneof
        [
          map (fun l -> Spec.Cond (A.Exists (A.Label l))) (oneofl candidates);
          map
            (fun l -> Spec.Cond (A.Eq (A.Label l, A.Const "alpha")))
            (oneofl candidates);
        ]
    in
    oneof [ return Spec.Yes; return Spec.No; return Spec.No; qual ]
  in
  let* chosen =
    flatten_l
      (List.filter_map
         (fun edge ->
           Some
             (let* keep = bool in
              if keep then map (fun an -> Some (edge, an)) (annot edge)
              else return None))
         edges)
  in
  return (Spec.make dtd (List.filter_map Fun.id chosen))

let gen_doc dtd : Sxml.Tree.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* seed = int_bound 10_000 in
  return
    (Sdtd.Gen.generate
       ~config:
         {
           Sdtd.Gen.default_config with
           seed;
           star_min = 0;
           star_max = 2;
           depth_budget = 8;
         }
       dtd)

(* Random fragment-C query over a label vocabulary.  Bounded size:
   rewriting distributes over union targets, so huge random queries
   make the equivalence check itself the bottleneck without testing
   anything new. *)
let gen_query labels : A.path QCheck2.Gen.t =
  let open QCheck2.Gen in
  let label = oneofl labels in
  (int_range 1 10 >>= fun size -> return size) >>= fix (fun self size ->
      if size <= 1 then
        oneof
          [ map (fun l -> A.Label l) label; return A.Eps; return A.Wildcard ]
      else
        oneof
          [
            map (fun l -> A.Label l) label;
            return A.Wildcard;
            map2 (fun a b -> A.Slash (a, b)) (self (size / 2)) (self (size / 2));
            map (fun a -> A.Dslash a) (self (size - 1));
            map2 (fun a b -> A.Union (a, b)) (self (size / 2)) (self (size / 2));
            map2
              (fun a q -> A.Qualify (a, q))
              (self (size / 2))
              (oneof
                 [
                   map (fun p -> A.Exists p) (self (size / 2));
                   map (fun p -> A.Not (A.Exists p)) (self (size / 2));
                   map (fun p -> A.Eq (p, A.Const "alpha")) (self (size / 2));
                 ]);
          ])

let element_height doc =
  let rec go (n : Sxml.Tree.t) =
    match Sxml.Tree.element_children n with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun acc c -> max acc (go c)) 0 cs
  in
  go doc

let ids nodes = List.map (fun (n : Sxml.Tree.t) -> n.Sxml.Tree.id) nodes

(* ------------------------------------------------------------------ *)

let gen_scenario =
  let open QCheck2.Gen in
  let* dtd = gen_dtd in
  let* spec = gen_spec dtd in
  let* doc = gen_doc dtd in
  return (dtd, spec, doc)

let print_scenario (dtd, spec, _doc) =
  Format.asprintf "DTD:@.%a@.Spec:@.%a@." Sdtd.Dtd.pp dtd Spec.pp spec

let prop_derive_sound_complete =
  QCheck2.Test.make ~name:"derive: sound and complete views" ~count:150
    ~print:print_scenario gen_scenario (fun (_dtd, spec, doc) ->
      let view = Derive.derive spec in
      match Materialize.materialize ~spec ~view doc with
      | exception Materialize.Abort _ ->
        (* Theorem 3.2: derive yields a sound and complete view iff one
           exists; aborting runs are outside that guarantee. *)
        QCheck2.assume_fail ()
      | vt ->
        let tree = Materialize.to_tree vt in
        let conforms = Sdtd.Validate.conforms (View.dtd view) tree in
        let accessible = Access.accessible_set spec doc in
        let sources = Materialize.element_sources vt in
        let non_dummy =
          List.filter_map
            (fun (l, id) -> if View.is_dummy view l then None else Some id)
            sources
          |> List.sort_uniq compare
        in
        let expected =
          List.filter_map
            (fun (n : Sxml.Tree.t) ->
              if Sxml.Tree.is_element n && Access.IntSet.mem n.id accessible
              then Some n.id
              else None)
            (Sxml.Tree.descendants_or_self doc)
        in
        conforms && non_dummy = expected)

let gen_scenario_with_query =
  let open QCheck2.Gen in
  let* dtd, spec, doc = gen_scenario in
  let view = Derive.derive spec in
  let labels = Sdtd.Dtd.reachable (View.dtd view) in
  let labels = List.map Sdtd.Unfold.label_of labels in
  let* q = gen_query (List.sort_uniq compare labels) in
  return (dtd, spec, doc, q)

let print_scenario_q (dtd, spec, _doc, q) =
  print_scenario (dtd, spec, _doc)
  ^ "Query: " ^ Sxpath.Print.to_string q

let prop_rewrite_equivalent =
  QCheck2.Test.make ~name:"rewrite: p(T_v) = p_t(T)" ~count:300
    ~print:print_scenario_q gen_scenario_with_query
    (fun (_dtd, spec, doc, q) ->
      let view = Derive.derive spec in
      match Materialize.materialize ~spec ~view doc with
      | exception Materialize.Abort _ -> QCheck2.assume_fail ()
      | vt ->
        let height = element_height doc in
        let pt = Rewrite.rewrite_with_height view ~height q in
        let direct = ids (eval pt doc) in
        let tree, source_of = Materialize.to_tree_with_sources vt in
        let via_view =
          List.filter_map
            (fun (n : Sxml.Tree.t) -> source_of n.id)
            (eval q tree)
          |> List.sort_uniq compare
        in
        direct = via_view)

let gen_doc_query =
  let open QCheck2.Gen in
  let* dtd = gen_dtd in
  let* doc = gen_doc dtd in
  let* q = gen_query (Sdtd.Dtd.reachable dtd) in
  return (dtd, doc, q)

let print_doc_query (dtd, _doc, q) =
  Format.asprintf "DTD:@.%a@.Query: %a" Sdtd.Dtd.pp dtd Sxpath.Print.pp q

let prop_optimize_equivalent =
  QCheck2.Test.make ~name:"optimize preserves answers" ~count:300
    ~print:print_doc_query gen_doc_query (fun (dtd, doc, q) ->
      let po = Optimize.optimize dtd q in
      ids (eval q doc) = ids (eval po doc))

let gen_containment =
  let open QCheck2.Gen in
  let* dtd = gen_dtd in
  let* doc = gen_doc dtd in
  let labels = Sdtd.Dtd.reachable dtd in
  let* q1 = gen_query labels in
  let* q2 = gen_query labels in
  return (dtd, doc, q1, q2)

let prop_containment_sound =
  QCheck2.Test.make ~name:"simulation containment is sound" ~count:300
    ~print:(fun (dtd, _doc, q1, q2) ->
      Format.asprintf "DTD:@.%a@.p1 = %a@.p2 = %a" Sdtd.Dtd.pp dtd
        Sxpath.Print.pp q1 Sxpath.Print.pp q2)
    gen_containment
    (fun (dtd, doc, q1, q2) ->
      QCheck2.assume (Simulate.contained dtd q1 q2 (Sdtd.Dtd.root dtd));
      let s1 = ids (eval q1 doc) in
      let s2 = ids (eval q2 doc) in
      List.for_all (fun x -> List.mem x s2) s1)

let prop_rewrite_output_is_secure =
  (* Every node a rewritten query returns is either accessible or the
     source of a dummy element of the view — dummies are part of what
     the view exposes (with their labels hidden), so wildcard and
     dummy-label steps legitimately reach their hidden source nodes. *)
  QCheck2.Test.make
    ~name:"rewritten queries return only view-exposed nodes" ~count:300
    ~print:print_scenario_q gen_scenario_with_query
    (fun (_dtd, spec, doc, q) ->
      let view = Derive.derive spec in
      match Materialize.materialize ~spec ~view doc with
      | exception Materialize.Abort _ -> QCheck2.assume_fail ()
      | vt ->
        let height = element_height doc in
        let pt = Rewrite.rewrite_with_height view ~height q in
        let accessible = Access.accessible_set spec doc in
        let dummy_sources =
          List.filter_map
            (fun (l, id) -> if View.is_dummy view l then Some id else None)
            (Materialize.element_sources vt)
        in
        List.for_all
          (fun (n : Sxml.Tree.t) ->
            Access.IntSet.mem n.id accessible
            || List.mem n.id dummy_sources)
          (eval pt doc))

let prop_view_definition_roundtrip =
  QCheck2.Test.make ~name:"view definitions roundtrip through text"
    ~count:150 ~print:print_scenario gen_scenario (fun (_dtd, spec, _doc) ->
      let view = Derive.derive spec in
      let reloaded = View.of_definition (View.to_definition view) in
      Sdtd.Dtd.equal (View.dtd view) (View.dtd reloaded)
      && List.sort compare (View.dummies view)
         = List.sort compare (View.dummies reloaded)
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 Sxpath.Simplify.equivalent_syntax
                   (View.sigma_exn view ~parent:a ~child:b)
                   (View.sigma_exn reloaded ~parent:a ~child:b))
               (Sdtd.Dtd.children_of (View.dtd view) a))
           (Sdtd.Dtd.reachable (View.dtd view)))

let prop_audit_hidden_matches_view =
  QCheck2.Test.make
    ~name:"audit-hidden types are absent from the derived view DTD"
    ~count:150 ~print:print_scenario gen_scenario (fun (_dtd, spec, _doc) ->
      let view = Derive.derive spec in
      let view_dtd = View.dtd view in
      List.for_all
        (fun t -> not (Sdtd.Dtd.mem view_dtd t))
        (Secview.Audit.hidden_types spec))

let prop_indexed_rewrite_equivalent =
  QCheck2.Test.make
    ~name:"indexed evaluation agrees on rewritten queries" ~count:150
    ~print:print_scenario_q gen_scenario_with_query
    (fun (_dtd, spec, doc, q) ->
      let view = Derive.derive spec in
      let height = element_height doc in
      let pt = Rewrite.rewrite_with_height view ~height q in
      let idx = Sxml.Index.build doc in
      ids (eval pt doc) = ids (eval ~index:idx pt doc))

let () =
  Alcotest.run "properties"
    [
      ( "end-to-end",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [
            prop_derive_sound_complete;
            prop_rewrite_equivalent;
            prop_optimize_equivalent;
            prop_containment_sound;
            prop_rewrite_output_is_secure;
            prop_view_definition_roundtrip;
            prop_audit_hidden_matches_view;
            prop_indexed_rewrite_equivalent;
          ] );
    ]
