(* Content-model regexes: smart constructors, language predicates,
   derivative-based matching, normal-form classification. *)

open Sdtd

let e l = Regex.Elt l

let check_regex = Alcotest.testable Regex.pp Regex.equal

let test_seq_flattens () =
  Alcotest.check check_regex "nested seqs flatten"
    (Regex.Seq [ e "a"; e "b"; e "c" ])
    (Regex.seq [ Regex.seq [ e "a"; e "b" ]; e "c" ])

let test_seq_drops_epsilon () =
  Alcotest.check check_regex "epsilon vanishes in seq" (e "a")
    (Regex.seq [ Regex.Epsilon; e "a"; Regex.Epsilon ])

let test_seq_empty_absorbs () =
  Alcotest.check check_regex "empty absorbs seq" Regex.Empty
    (Regex.seq [ e "a"; Regex.Empty; e "b" ])

let test_seq_of_nothing_is_epsilon () =
  Alcotest.check check_regex "empty seq is epsilon" Regex.Epsilon
    (Regex.seq [])

let test_choice_flattens () =
  Alcotest.check check_regex "nested choices flatten"
    (Regex.Choice [ e "a"; e "b"; e "c" ])
    (Regex.choice [ Regex.choice [ e "a"; e "b" ]; e "c" ])

let test_choice_dedups () =
  Alcotest.check check_regex "duplicate branches dedup" (e "a")
    (Regex.choice [ e "a"; e "a" ])

let test_choice_drops_empty () =
  Alcotest.check check_regex "empty branch dropped"
    (Regex.Choice [ e "a"; e "b" ])
    (Regex.choice [ e "a"; Regex.Empty; e "b" ])

let test_choice_of_nothing () =
  Alcotest.check check_regex "empty choice is the empty language"
    Regex.Empty (Regex.choice [])

let test_star_idempotent () =
  Alcotest.check check_regex "star of star collapses"
    (Regex.Star (e "a"))
    (Regex.star (Regex.star (e "a")))

let test_star_of_epsilon () =
  Alcotest.check check_regex "star of epsilon is epsilon" Regex.Epsilon
    (Regex.star Regex.Epsilon)

let test_opt () =
  Alcotest.check check_regex "opt builds a nullable choice"
    (Regex.Choice [ e "a"; Regex.Epsilon ])
    (Regex.opt (e "a"))

let test_plus () =
  Alcotest.check check_regex "plus builds a, a*"
    (Regex.Seq [ e "a"; Regex.Star (e "a") ])
    (Regex.plus (e "a"))

let test_labels_order_and_dedup () =
  Alcotest.(check (list string))
    "labels in first-occurrence order"
    [ "a"; "b"; "c" ]
    (Regex.labels (Regex.Seq [ e "a"; e "b"; e "a"; Regex.Star (e "c") ]))

let test_nullable () =
  Alcotest.(check bool) "star nullable" true (Regex.nullable (Regex.Star (e "a")));
  Alcotest.(check bool) "label not nullable" false (Regex.nullable (e "a"));
  Alcotest.(check bool) "seq with star not nullable" false
    (Regex.nullable (Regex.Seq [ e "a"; Regex.Star (e "b") ]));
  Alcotest.(check bool) "choice with epsilon nullable" true
    (Regex.nullable (Regex.Choice [ e "a"; Regex.Epsilon ]));
  Alcotest.(check bool) "empty not nullable" false (Regex.nullable Regex.Empty)

let test_is_empty_language () =
  Alcotest.(check bool) "Empty" true (Regex.is_empty_language Regex.Empty);
  Alcotest.(check bool) "epsilon is not empty-language" false
    (Regex.is_empty_language Regex.Epsilon);
  Alcotest.(check bool) "seq containing Empty" true
    (Regex.is_empty_language (Regex.Seq [ e "a"; Regex.Empty ]));
  Alcotest.(check bool) "choice of Empties" true
    (Regex.is_empty_language (Regex.Choice [ Regex.Empty; Regex.Empty ]))

let matches r w = Regex.matches r w

let test_matches_seq () =
  let r = Regex.Seq [ e "a"; e "b" ] in
  Alcotest.(check bool) "ab" true (matches r [ "a"; "b" ]);
  Alcotest.(check bool) "a" false (matches r [ "a" ]);
  Alcotest.(check bool) "ba" false (matches r [ "b"; "a" ]);
  Alcotest.(check bool) "abb" false (matches r [ "a"; "b"; "b" ])

let test_matches_choice () =
  let r = Regex.Choice [ e "a"; e "b" ] in
  Alcotest.(check bool) "a" true (matches r [ "a" ]);
  Alcotest.(check bool) "b" true (matches r [ "b" ]);
  Alcotest.(check bool) "ab" false (matches r [ "a"; "b" ]);
  Alcotest.(check bool) "empty" false (matches r [])

let test_matches_star () =
  let r = Regex.Star (e "a") in
  Alcotest.(check bool) "empty" true (matches r []);
  Alcotest.(check bool) "aaa" true (matches r [ "a"; "a"; "a" ]);
  Alcotest.(check bool) "ab" false (matches r [ "a"; "b" ])

let test_matches_str () =
  Alcotest.(check bool) "pcdata" true (matches Regex.Str [ Regex.pcdata ]);
  Alcotest.(check bool) "element against str" false
    (matches Regex.Str [ "a" ]);
  Alcotest.(check bool) "no text" false (matches Regex.Str [])

let test_matches_mixed () =
  (* (a*, b | c) — star inside seq with trailing choice *)
  let r = Regex.Seq [ Regex.Star (e "a"); Regex.Choice [ e "b"; e "c" ] ] in
  Alcotest.(check bool) "b" true (matches r [ "b" ]);
  Alcotest.(check bool) "aac" true (matches r [ "a"; "a"; "c" ]);
  Alcotest.(check bool) "aa" false (matches r [ "a"; "a" ]);
  Alcotest.(check bool) "bc" false (matches r [ "b"; "c" ])

let test_matches_empty_language () =
  Alcotest.(check bool) "Empty matches nothing, not even []" false
    (matches Regex.Empty [])

let test_deriv () =
  Alcotest.check check_regex "d/da (a,b) = b" (e "b")
    (Regex.deriv "a" (Regex.Seq [ e "a"; e "b" ]));
  Alcotest.check check_regex "d/db (a,b) = empty" Regex.Empty
    (Regex.deriv "b" (Regex.Seq [ e "a"; e "b" ]));
  Alcotest.check check_regex "d/da a* = a*"
    (Regex.Star (e "a"))
    (Regex.deriv "a" (Regex.Star (e "a")))

let test_deriv_nullable_head () =
  (* (a*, b): deriving by b must skip the nullable head. *)
  let r = Regex.Seq [ Regex.Star (e "a"); e "b" ] in
  Alcotest.check check_regex "d/db (a*, b) = eps" Regex.Epsilon
    (Regex.deriv "b" r)

let test_shape () =
  let shape_t =
    Alcotest.testable
      (fun ppf -> function
        | None -> Format.pp_print_string ppf "None"
        | Some s -> Regex.pp ppf (Regex.of_shape s))
      ( = )
  in
  Alcotest.check shape_t "str" (Some Regex.Shape_str) (Regex.shape Regex.Str);
  Alcotest.check shape_t "epsilon" (Some Regex.Shape_epsilon)
    (Regex.shape Regex.Epsilon);
  Alcotest.check shape_t "single label = seq of one"
    (Some (Regex.Shape_seq [ "a" ]))
    (Regex.shape (e "a"));
  Alcotest.check shape_t "seq"
    (Some (Regex.Shape_seq [ "a"; "b" ]))
    (Regex.shape (Regex.Seq [ e "a"; e "b" ]));
  Alcotest.check shape_t "choice"
    (Some (Regex.Shape_choice [ "a"; "b" ]))
    (Regex.shape (Regex.Choice [ e "a"; e "b" ]));
  Alcotest.check shape_t "star" (Some (Regex.Shape_star "a"))
    (Regex.shape (Regex.Star (e "a")));
  Alcotest.check shape_t "star in seq is not normal form" None
    (Regex.shape (Regex.Seq [ Regex.Star (e "a"); e "b" ]));
  Alcotest.check shape_t "epsilon in choice is not normal form" None
    (Regex.shape (Regex.Choice [ e "a"; Regex.Epsilon ]))

let test_rename () =
  Alcotest.check check_regex "rename labels"
    (Regex.Seq [ e "A"; Regex.Star (e "B") ])
    (Regex.rename String.uppercase_ascii
       (Regex.Seq [ e "a"; Regex.Star (e "b") ]))

let test_print_parse_roundtrip () =
  let cases =
    [
      Regex.Seq [ e "a"; e "b"; e "c" ];
      Regex.Choice [ e "a"; e "b" ];
      Regex.Star (e "a");
      Regex.Seq [ Regex.Star (e "a"); Regex.Choice [ e "b"; e "c" ] ];
      Regex.Str;
      Regex.Epsilon;
      Regex.Seq [ e "a"; Regex.Star (Regex.Choice [ e "b"; e "c" ]) ];
    ]
  in
  List.iter
    (fun r ->
      let printed = Regex.to_string r in
      let reparsed = Parse.regex_of_string printed in
      Alcotest.check check_regex printed r reparsed)
    cases

(* Property: derivative-based matching agrees with a brute-force
   membership check on small words. *)
let gen_regex =
  let open QCheck2.Gen in
  let label = oneofl [ "a"; "b"; "c" ] in
  sized @@ fix (fun self n ->
      if n <= 1 then
        oneof [ map (fun l -> Regex.Elt l) label; return Regex.Epsilon;
                return Regex.Str ]
      else
        oneof
          [
            map (fun l -> Regex.Elt l) label;
            map Regex.star (self (n / 2));
            map2 (fun a b -> Regex.seq [ a; b ]) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Regex.choice [ a; b ]) (self (n / 2)) (self (n / 2));
          ])

let prop_deriv_consistent =
  QCheck2.Test.make ~name:"deriv: matches(r, s::w) = matches(deriv s r, w)"
    ~count:200
    QCheck2.Gen.(
      triple gen_regex (oneofl [ "a"; "b"; "c"; Sdtd.Regex.pcdata ])
        (small_list (oneofl [ "a"; "b"; "c" ])))
    (fun (r, s, w) ->
      Regex.matches r (s :: w) = Regex.matches (Regex.deriv s r) w)

let prop_nullable_matches_empty =
  QCheck2.Test.make ~name:"nullable r = matches r []" ~count:200 gen_regex
    (fun r -> Regex.nullable r = Regex.matches r [])

let prop_print_parse =
  QCheck2.Test.make ~name:"print/parse roundtrip" ~print:Regex.to_string ~count:200 gen_regex
    (fun r ->
      let r = Regex.seq [ r ] in
      (* normalize via smart constructor *)
      match Parse.regex_of_string (Regex.to_string r) with
      | r' -> Regex.equal r r'
      | exception Parse.Error _ -> false)

let () =
  Alcotest.run "regex"
    [
      ( "smart-constructors",
        [
          Alcotest.test_case "seq flattens" `Quick test_seq_flattens;
          Alcotest.test_case "seq drops epsilon" `Quick test_seq_drops_epsilon;
          Alcotest.test_case "seq absorbs empty" `Quick test_seq_empty_absorbs;
          Alcotest.test_case "seq [] = eps" `Quick test_seq_of_nothing_is_epsilon;
          Alcotest.test_case "choice flattens" `Quick test_choice_flattens;
          Alcotest.test_case "choice dedups" `Quick test_choice_dedups;
          Alcotest.test_case "choice drops empty" `Quick test_choice_drops_empty;
          Alcotest.test_case "choice [] = none" `Quick test_choice_of_nothing;
          Alcotest.test_case "star idempotent" `Quick test_star_idempotent;
          Alcotest.test_case "star eps" `Quick test_star_of_epsilon;
          Alcotest.test_case "opt" `Quick test_opt;
          Alcotest.test_case "plus" `Quick test_plus;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "labels" `Quick test_labels_order_and_dedup;
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "is_empty_language" `Quick test_is_empty_language;
          Alcotest.test_case "rename" `Quick test_rename;
        ] );
      ( "matching",
        [
          Alcotest.test_case "seq words" `Quick test_matches_seq;
          Alcotest.test_case "choice words" `Quick test_matches_choice;
          Alcotest.test_case "star words" `Quick test_matches_star;
          Alcotest.test_case "str words" `Quick test_matches_str;
          Alcotest.test_case "mixed model" `Quick test_matches_mixed;
          Alcotest.test_case "empty language" `Quick test_matches_empty_language;
          Alcotest.test_case "derivatives" `Quick test_deriv;
          Alcotest.test_case "deriv skips nullable head" `Quick
            test_deriv_nullable_head;
        ] );
      ( "shapes-and-syntax",
        [
          Alcotest.test_case "shape classification" `Quick test_shape;
          Alcotest.test_case "print/parse cases" `Quick
            test_print_parse_roundtrip;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_deriv_consistent; prop_nullable_matches_empty;
            prop_print_parse ] );
    ]
