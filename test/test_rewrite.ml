(* Algorithm rewrite: Example 4.1, the Section 6 query forms, recProc,
   equivalence with the materialization semantics, recursive views via
   unfolding, and the paper-vs-precise mode divergence. *)

module A = Sxpath.Ast
module R = Sdtd.Regex
module Spec = Secview.Spec
module View = Secview.View
module Derive = Secview.Derive
module Rewrite = Secview.Rewrite
module Materialize = Secview.Materialize

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let e l = R.Elt l
let parse = Sxpath.Parse.of_string
let path_t = Alcotest.testable Sxpath.Print.pp Sxpath.Simplify.equivalent_syntax

let nurse_view () =
  Derive.derive (Workload.Hospital.nurse_spec Workload.Hospital.dtd)

(* Evaluate a view query both ways and compare answers through the
   source mapping. *)
let check_equivalent ?(env = fun _ -> None) ~spec ~view query doc =
  let pt = Rewrite.rewrite view query in
  let direct =
    List.map
      (fun n -> n.Sxml.Tree.id)
      (eval ~env pt doc)
  in
  let vt = Materialize.materialize ~env ~spec ~view doc in
  let tree, source_of = Materialize.to_tree_with_sources vt in
  let via_view =
    List.filter_map
      (fun n -> source_of n.Sxml.Tree.id)
      (eval ~env query tree)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int))
    (Printf.sprintf "p(T_v) = p_t(T) for %s" (Sxpath.Print.to_string query))
    via_view direct

(* ---- Example 4.1 --------------------------------------------------- *)

let test_example_4_1 () =
  let view = nurse_view () in
  let pt = Rewrite.rewrite view (parse "//patient//bill") in
  Alcotest.check path_t "rewritten //patient//bill"
    (parse
       "dept[*/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | \
        patientInfo)/patient/(treatment/trial/bill | treatment/regular/bill)")
    pt

let test_hospital_label_step () =
  let view = nurse_view () in
  Alcotest.check path_t "dept step keeps qualifier"
    (parse "dept[*/patient/wardNo = $wardNo]")
    (Rewrite.rewrite view (parse "dept"));
  Alcotest.check path_t "unknown label is empty" A.Empty
    (Rewrite.rewrite view (parse "clinicalTrial"));
  Alcotest.check path_t "secret type under dept is empty" A.Empty
    (Rewrite.rewrite view (parse "dept/clinicalTrial"))

let test_hospital_dummy_query () =
  (* Users can navigate through dummy labels they see in the view DTD. *)
  let view = nurse_view () in
  Alcotest.check path_t "dummy path"
    (parse
       "dept[*/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | \
        patientInfo)/patient/treatment/regular/bill")
    (Rewrite.rewrite view (parse "//treatment/dummy2/bill"))

let test_hospital_wildcard () =
  let view = nurse_view () in
  Alcotest.check path_t "wildcard at treatment"
    (parse
       "dept[*/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | \
        patientInfo)/patient/treatment/(trial | regular)")
    (Rewrite.rewrite view (parse "//treatment/*"))

let test_hospital_qualifier_rewriting () =
  let view = nurse_view () in
  (* [dummy2] at treatment rewrites to [regular]. *)
  let pt = Rewrite.rewrite view (parse "//patient[treatment/dummy2]/name") in
  let s = Sxpath.Print.to_string pt in
  Alcotest.(check bool) "qualifier mentions the hidden label" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains s "treatment/regular")

let test_qualifier_false_prunes () =
  let view = nurse_view () in
  Alcotest.check path_t "[clinicalTrial] is unsatisfiable in the view"
    A.Empty
    (Rewrite.rewrite view (parse "dept[clinicalTrial]"))

let test_negated_qualifier () =
  let view = nurse_view () in
  (* not(unknown) is vacuously true. *)
  let pt = Rewrite.rewrite view (parse "dept[not(clinicalTrial)]") in
  Alcotest.check path_t "negation of unsatisfiable is true"
    (parse "dept[*/patient/wardNo = $wardNo]")
    pt

let test_equality_qualifier () =
  let view = nurse_view () in
  let pt = Rewrite.rewrite view (parse "//patient[name = \"Alice\"]") in
  Alcotest.(check bool) "rewrites without error" true (A.size pt > 0)

(* ---- recProc ------------------------------------------------------- *)

let test_recrw_hospital () =
  let view = nurse_view () in
  let table = Rewrite.recrw view "hospital" in
  Alcotest.(check bool) "self entry is eps" true
    (match List.assoc_opt "hospital" table with
    | Some A.Eps -> true
    | _ -> false);
  (match List.assoc_opt "bill" table with
  | Some q ->
    Alcotest.check path_t "all paths to bill"
      (parse
         "dept[*/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | \
          patientInfo)/patient/treatment/(trial | regular)/bill")
      q
  | None -> Alcotest.fail "bill unreachable");
  Alcotest.(check int) "reach covers the whole view DTD"
    (List.length (Sdtd.Dtd.reachable (View.dtd view)))
    (List.length table)

let test_recrw_factored_diamond () =
  (* Fig. 7 (a)'s diamond: recrw(a, g) should stay factored, not
     enumerate the four paths. *)
  let dtd =
    Sdtd.Dtd.create ~root:"a"
      [
        ("a", R.Seq [ R.Choice [ e "b"; R.Epsilon ]; e "c" ]);
        ("b", e "c");
        ("c", R.Choice [ e "f"; e "g2" ]);
        ("f", e "g");
        ("g2", e "g");
        ("g", R.Str);
      ]
  in
  (* NB: shape differs slightly from the figure; the point is prefix
     sharing through the diamond c -> (f|g2) -> g. *)
  let view = View.identity_of dtd in
  let table = Rewrite.recrw view "a" in
  match List.assoc_opt "g" table with
  | None -> Alcotest.fail "g unreachable"
  | Some q ->
    Alcotest.check path_t "factored form"
      (parse "(. | b)/c/(f | g2)/g")
      q

(* ---- equivalence with materialization ------------------------------ *)

let test_hospital_equivalence_suite () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let view = Derive.derive spec in
  let env = Workload.Hospital.nurse_env "6" in
  let doc = Workload.Hospital.sample_document () in
  List.iter
    (fun q -> check_equivalent ~env ~spec ~view (parse q) doc)
    [
      "//patient//bill";
      "//patient/name";
      "dept/patientInfo/patient/name";
      "//dept//patientInfo/patient/name";
      "//staff/*/name";
      "//patient[treatment/dummy2]/name";
      "//patient[treatment/dummy1]/name";
      "//name";
      "//*[wardNo]";
      "dept/*";
      "//treatment/* | //staff";
      "//patient[not(treatment/dummy1)]/name";
      "//patient[name = \"Bob\"]/treatment//bill";
      ".";
      "//medication";
    ]

let test_generated_equivalence () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let view = Derive.derive spec in
  let env = Workload.Hospital.nurse_env "6" in
  List.iter
    (fun seed ->
      let doc = Workload.Hospital.generated_document ~seed ~scale:4 () in
      List.iter
        (fun q -> check_equivalent ~env ~spec ~view (parse q) doc)
        [ "//patient//bill"; "//name"; "//patientInfo/patient" ])
    [ 1; 2; 3 ]

(* ---- the inference attack of Example 1.1 --------------------------- *)

let test_inference_attack_blocked () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let view = Derive.derive spec in
  let env = Workload.Hospital.nurse_env "6" in
  let doc = Workload.Hospital.sample_document () in
  let p1, p2 = Workload.Hospital.inference_queries in
  (* Over the raw document the difference reveals the trial patient. *)
  let names p = List.map Sxml.Tree.string_value (eval ~env p doc) in
  let diff =
    List.filter (fun n -> not (List.mem n (names p2))) (names p1)
  in
  Alcotest.(check (list string)) "raw document leaks Alice and Dave"
    [ "Alice"; "Dave" ] (List.sort compare diff);
  (* Through the security view both queries rewrite to queries whose
     answers coincide: the difference is empty. *)
  let eval_rw p =
    List.map Sxml.Tree.string_value
      (eval ~env (Rewrite.rewrite view p) doc)
  in
  let r1 = eval_rw p1 and r2 = eval_rw p2 in
  Alcotest.(check (list string)) "view answers coincide" r2 r1

(* ---- recursive views ------------------------------------------------ *)

let test_recursive_rejected_without_unfolding () =
  let view = Workload.Fig7.view () in
  Alcotest.(check bool) "raises Unsupported" true
    (match Rewrite.rewrite view (parse "//b") with
    | exception Rewrite.Unsupported _ -> true
    | _ -> false)

let test_recursive_unfolding () =
  let view = Workload.Fig7.view () in
  let doc = Workload.Fig7.document ~depth:3 in
  let height = Sxml.Tree.depth doc - 1 in
  let pt = Rewrite.rewrite_with_height view ~height (parse "//b") in
  Alcotest.check path_t "(a/c)*/b truncated at the document height"
    (parse "a/b | a/c/a/b | a/c/a/c/a/b")
    pt;
  let values =
    List.map Sxml.Tree.string_value (eval pt doc)
  in
  Alcotest.(check (list string)) "hidden b excluded"
    [ "visible-1"; "visible-2"; "visible-3" ]
    values

let test_recursive_depths () =
  let view = Workload.Fig7.view () in
  List.iter
    (fun depth ->
      let doc = Workload.Fig7.document ~depth in
      let height = Sxml.Tree.depth doc - 1 in
      let pt = Rewrite.rewrite_with_height view ~height (parse "//b") in
      Alcotest.(check int)
        (Printf.sprintf "depth %d: all visible b's" depth)
        depth
        (List.length (eval pt doc)))
    [ 1; 2; 4; 6 ]

(* ---- paper mode vs precise mode ------------------------------------ *)

let leak_setup () =
  (* r -> (a, b); both a and b have a c child; c is visible under a
     but hidden under b.  The published combination step unions the
     continuations over all reached types, so (a|b)/c leaks the c
     under b; the precise mode does not. *)
  let dtd =
    Sdtd.Dtd.create ~root:"r"
      [
        ("r", R.Seq [ e "a"; e "b" ]);
        ("a", R.Seq [ e "c" ]);
        ("b", R.Seq [ e "c" ]);
        ("c", R.Str);
      ]
  in
  let spec = Spec.make dtd [ (("b", "c"), Spec.No) ] in
  let view = Derive.derive spec in
  let doc =
    Sxml.Tree.(
      of_spec
        (elem "r"
           [
             elem "a" [ elem "c" [ text "public" ] ];
             elem "b" [ elem "c" [ text "secret" ] ];
           ]))
  in
  (spec, view, doc)

let test_paper_mode_leak_documented () =
  let _, view, doc = leak_setup () in
  let q = parse "(a | b)/c" in
  let coarse = Rewrite.rewrite ~mode:`Paper view q in
  let leak =
    List.map Sxml.Tree.string_value (eval coarse doc)
  in
  Alcotest.(check (list string)) "published algorithm over-returns"
    [ "public"; "secret" ] leak

let test_precise_mode_no_leak () =
  let spec, view, doc = leak_setup () in
  let q = parse "(a | b)/c" in
  let precise = Rewrite.rewrite view q in
  let safe = List.map Sxml.Tree.string_value (eval precise doc) in
  Alcotest.(check (list string)) "precise mode returns only accessible data"
    [ "public" ] safe;
  check_equivalent ~spec ~view q doc

let test_modes_agree_on_paper_examples () =
  let view = nurse_view () in
  List.iter
    (fun q ->
      let a = Rewrite.rewrite ~mode:`Paper view (parse q) in
      let b = Rewrite.rewrite ~mode:`Precise view (parse q) in
      let doc = Workload.Hospital.sample_document () in
      let env = Workload.Hospital.nurse_env "6" in
      let ids p =
        List.map (fun n -> n.Sxml.Tree.id) (eval ~env p doc)
      in
      Alcotest.(check (list int)) ("modes agree on " ^ q) (ids a) (ids b))
    [ "//patient//bill"; "//name"; "//treatment/*"; "dept/patientInfo" ]

(* ---- misc ----------------------------------------------------------- *)

let test_targets () =
  let view = nurse_view () in
  let targets = Rewrite.targets view (parse "//patientInfo/patient") in
  Alcotest.(check (list string)) "single target type" [ "patient" ]
    (List.map fst targets)

let test_undeclared_attribute_is_empty () =
  (* the hospital DTD declares no attributes: a query demanding one can
     match nothing *)
  let view = nurse_view () in
  Alcotest.check path_t "qualifier on undeclared attribute" A.Empty
    (Rewrite.rewrite view (parse "//patient[@x]"))

let test_empty_query () =
  let view = nurse_view () in
  Alcotest.check path_t "empty stays empty" A.Empty
    (Rewrite.rewrite view A.Empty)

(* ---- additional coverage --------------------------------------------- *)

let test_adex_modes_agree () =
  let view = Workload.Adex.view () in
  let doc = Workload.Adex.document ~ads:8 ~buyers:5 () in
  List.iter
    (fun (name, q) ->
      let a = Rewrite.rewrite ~mode:`Paper view q in
      let b = Rewrite.rewrite ~mode:`Precise view q in
      let ids p =
        List.map (fun (n : Sxml.Tree.t) -> n.id) (eval p doc)
      in
      Alcotest.(check (list int)) ("adex modes agree on " ^ name) (ids a)
        (ids b))
    Workload.Adex.queries

let test_adex_targets () =
  let view = Workload.Adex.view () in
  let targets =
    Rewrite.targets view (parse "//house/r-e.warranty")
  in
  Alcotest.(check (list string)) "single warranty target"
    [ "r-e.warranty" ]
    (List.map fst targets)

let test_sigma_lookup_after_unfold () =
  (* unfolded views resolve σ through label stripping *)
  let view = Workload.Fig7.view () in
  let unfolded = View.unfolded view ~height:5 in
  let dtd = View.dtd unfolded in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match View.sigma unfolded ~parent:a ~child:b with
          | Some _ -> ()
          | None -> Alcotest.failf "missing sigma(%s, %s) after unfold" a b)
        (Sdtd.Dtd.children_of dtd a))
    (Sdtd.Dtd.reachable dtd)

let test_rewrite_on_view_with_conditions_and_vars () =
  (* a $var inside a σ qualifier survives rewriting and is bound only
     at evaluation time *)
  let view = nurse_view () in
  let pt = Rewrite.rewrite view (parse "dept/staffInfo") in
  Alcotest.(check (list string)) "variable kept" [ "wardNo" ]
    (A.variables pt)

let test_deep_union_stays_factored () =
  let view = nurse_view () in
  let pt = Rewrite.rewrite view (parse "//bill | //medication") in
  (* factored output shares the dept prefix once per union branch at
     most: the prefix appears at most twice *)
  let s = Sxpath.Print.to_string pt in
  let count_occurrences sub =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length s then acc
      else if String.sub s i n = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "prefix shared (%d occurrences in %s)"
       (count_occurrences "wardNo = $wardNo") s)
    true
    (count_occurrences "wardNo = $wardNo" <= 2)

let test_xmark_rewrite_equivalence_via_view_tree () =
  let spec = Workload.Xmark.spec in
  let view = Workload.Xmark.view () in
  let doc = Workload.Xmark.document ~seed:31 ~scale:3 () in
  let height = Workload.Xmark.element_height doc in
  let vt = Materialize.materialize ~spec ~view doc in
  let tree, source_of = Materialize.to_tree_with_sources vt in
  List.iter
    (fun q ->
      let q = parse q in
      let pt = Rewrite.rewrite_with_height view ~height q in
      let direct =
        List.map (fun (n : Sxml.Tree.t) -> n.id) (eval pt doc)
      in
      let via =
        List.filter_map
          (fun (n : Sxml.Tree.t) -> source_of n.id)
          (eval q tree)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list int))
        ("xmark " ^ Sxpath.Print.to_string q)
        via direct)
    [ "//parlist/listitem"; "//person/*"; "//item[name]//text" ]

let () =
  Alcotest.run "rewrite"
    [
      ( "hospital-forms",
        [
          Alcotest.test_case "Example 4.1" `Quick test_example_4_1;
          Alcotest.test_case "label steps" `Quick test_hospital_label_step;
          Alcotest.test_case "dummy navigation" `Quick
            test_hospital_dummy_query;
          Alcotest.test_case "wildcard" `Quick test_hospital_wildcard;
          Alcotest.test_case "qualifier rewriting" `Quick
            test_hospital_qualifier_rewriting;
          Alcotest.test_case "unsatisfiable qualifier" `Quick
            test_qualifier_false_prunes;
          Alcotest.test_case "negated qualifier" `Quick test_negated_qualifier;
          Alcotest.test_case "equality qualifier" `Quick
            test_equality_qualifier;
        ] );
      ( "recproc",
        [
          Alcotest.test_case "hospital recrw" `Quick test_recrw_hospital;
          Alcotest.test_case "diamond stays factored" `Quick
            test_recrw_factored_diamond;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hospital query suite" `Quick
            test_hospital_equivalence_suite;
          Alcotest.test_case "generated documents" `Quick
            test_generated_equivalence;
          Alcotest.test_case "inference attack blocked" `Quick
            test_inference_attack_blocked;
        ] );
      ( "recursive-views",
        [
          Alcotest.test_case "rejected without unfolding" `Quick
            test_recursive_rejected_without_unfolding;
          Alcotest.test_case "unfolding rewrites //" `Quick
            test_recursive_unfolding;
          Alcotest.test_case "varying depths" `Quick test_recursive_depths;
        ] );
      ( "modes",
        [
          Alcotest.test_case "paper-mode corner (documented)" `Quick
            test_paper_mode_leak_documented;
          Alcotest.test_case "precise mode is safe" `Quick
            test_precise_mode_no_leak;
          Alcotest.test_case "modes agree on paper examples" `Quick
            test_modes_agree_on_paper_examples;
        ] );
      ( "misc",
        [
          Alcotest.test_case "targets" `Quick test_targets;
          Alcotest.test_case "undeclared attributes empty" `Quick
            test_undeclared_attribute_is_empty;
          Alcotest.test_case "empty query" `Quick test_empty_query;
        ] );
      ( "extended",
        [
          Alcotest.test_case "adex modes agree" `Quick test_adex_modes_agree;
          Alcotest.test_case "adex targets" `Quick test_adex_targets;
          Alcotest.test_case "sigma after unfolding" `Quick
            test_sigma_lookup_after_unfold;
          Alcotest.test_case "variables survive" `Quick
            test_rewrite_on_view_with_conditions_and_vars;
          Alcotest.test_case "factored unions" `Quick
            test_deep_union_stays_factored;
          Alcotest.test_case "xmark equivalence" `Quick
            test_xmark_rewrite_equivalence_via_view_tree;
        ] );
    ]
