(* The concurrent query server: protocol decoding, the bounded queue,
   deadlines, the document catalog, pipeline thread-safety, and full
   over-the-socket round trips including overload, timeout and drain. *)

module J = Sobs.Json
module Protocol = Sserver.Protocol
module Server = Sserver.Server
module Bqueue = Sserver.Bqueue
module Deadline = Sserver.Deadline
module Catalog = Secview.Catalog
module Pipeline = Secview.Pipeline

(* ---- JSON parser --------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null; J.Bool true; J.Int 42; J.Int (-7); J.Float 1.5;
      J.String "plain"; J.String "esc \"q\" \\ / \n \t \r";
      J.List [ J.Int 1; J.String "two"; J.Null ];
      J.Obj
        [
          ("a", J.Int 1);
          ("nested", J.Obj [ ("xs", J.List [ J.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      match J.of_string (J.to_string v) with
      | Ok v' ->
        Alcotest.(check string)
          "round trip" (J.to_string v) (J.to_string v')
      | Error e -> Alcotest.failf "parse failed: %s" e)
    cases

let test_json_errors () =
  let bad = [ ""; "nul"; "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad;
  (match J.of_string " {\"k\": [1, 2.5, \"\\u00e9\"]} " with
  | Ok (J.Obj [ ("k", J.List [ J.Int 1; J.Float 2.5; J.String "\xc3\xa9" ]) ])
    -> ()
  | Ok other -> Alcotest.failf "unexpected shape: %s" (J.to_string other)
  | Error e -> Alcotest.failf "parse failed: %s" e)

(* ---- protocol ------------------------------------------------------- *)

let test_protocol_roundtrip () =
  (match Protocol.request_of_line (J.to_string (Protocol.hello ~peer:"p" "g"))
   with
  | Ok (Protocol.Hello { group = "g"; peer = Some "p" }, None) -> ()
  | _ -> Alcotest.fail "hello did not round trip");
  (match
     Protocol.request_of_line
       (J.to_string
          (Protocol.query_json ~doc:"d" ~bind:[ ("x", "1") ] ~use_index:true
             "//a"))
   with
  | Ok
      ( Protocol.Query
          { doc = Some "d"; text = "//a"; bind = [ ("x", "1") ];
            use_index = true },
        None ) -> ()
  | _ -> Alcotest.fail "query did not round trip");
  List.iter
    (fun (cmd, want) ->
      match Protocol.request_of_line (J.to_string (Protocol.simple cmd)) with
      | Ok (got, None) when got = want -> ()
      | _ -> Alcotest.failf "%s did not round trip" cmd)
    [ ("stats", Protocol.Stats); ("ping", Protocol.Ping);
      ("shutdown", Protocol.Shutdown); ("flight", Protocol.Flight) ]

let test_protocol_rid () =
  (* a client-chosen rid rides along with any command... *)
  (match
     Protocol.request_of_line
       (J.to_string (Protocol.query_json ~rid:"req-7" "//a"))
   with
  | Ok (Protocol.Query { text = "//a"; _ }, Some "req-7") -> ()
  | _ -> Alcotest.fail "query rid did not round trip");
  (match Protocol.request_of_line "{\"cmd\":\"ping\",\"rid\":\"p9\"}" with
  | Ok (Protocol.Ping, Some "p9") -> ()
  | _ -> Alcotest.fail "ping rid did not round trip");
  (* ...and is recoverable even from a line that is not a command *)
  Alcotest.(check (option string))
    "rid_of_line on a broken command" (Some "x1")
    (Protocol.rid_of_line "{\"cmd\":\"frob\",\"rid\":\"x1\"}");
  Alcotest.(check (option string))
    "rid_of_line on junk" None
    (Protocol.rid_of_line "not json")

let test_protocol_rejects () =
  let bad =
    [
      "not json";
      "{\"no\":\"cmd\"}";
      "{\"cmd\":\"frob\"}";
      "{\"cmd\":\"hello\"}";
      "{\"cmd\":\"hello\",\"group\":7}";
      "{\"cmd\":\"query\"}";
      "{\"cmd\":\"query\",\"query\":\"//a\",\"bind\":[1]}";
      "{\"cmd\":\"query\",\"query\":\"//a\",\"index\":\"yes\"}";
      "{\"cmd\":\"sleep\",\"ms\":-5}";
      "{\"cmd\":\"ping\",\"rid\":7}";
    ]
  in
  List.iter
    (fun line ->
      match Protocol.request_of_line line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    bad

(* ---- bounded queue -------------------------------------------------- *)

let test_bqueue () =
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1 = `Ok);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2 = `Ok);
  Alcotest.(check bool) "push 3 full" true (Bqueue.try_push q 3 = `Full);
  Alcotest.(check int) "length" 2 (Bqueue.length q);
  Alcotest.(check (option int)) "pop fifo" (Some 1) (Bqueue.pop q);
  Bqueue.close q;
  Alcotest.(check bool) "push closed" true (Bqueue.try_push q 4 = `Closed);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "then empty" None (Bqueue.pop q)

let test_bqueue_threads () =
  let q = Bqueue.create ~capacity:4 in
  let popped = Atomic.make 0 in
  let consumers =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            let rec go () =
              match Bqueue.pop q with
              | Some _ ->
                Atomic.incr popped;
                go ()
              | None -> ()
            in
            go ())
          ())
  in
  let pushed = ref 0 in
  for i = 1 to 200 do
    let rec push () =
      match Bqueue.try_push q i with
      | `Ok -> incr pushed
      | `Full ->
        Thread.yield ();
        push ()
      | `Closed -> Alcotest.fail "closed early"
    in
    push ()
  done;
  Bqueue.close q;
  List.iter Thread.join consumers;
  Alcotest.(check int) "all items popped" !pushed (Atomic.get popped)

let test_bqueue_close_wakes_empty_pop () =
  (* consumers blocked on an EMPTY queue must all wake with None when
     the queue closes — the drain path's liveness guarantee *)
  let q = Bqueue.create ~capacity:2 in
  let woke = Atomic.make 0 in
  let consumers =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            match Bqueue.pop q with
            | None -> Atomic.incr woke
            | Some _ -> ())
          ())
  in
  Thread.delay 0.05;
  (* all four are parked in pop *)
  Bqueue.close q;
  List.iter Thread.join consumers;
  Alcotest.(check int) "every blocked consumer woke with None" 4
    (Atomic.get woke);
  Alcotest.(check bool) "is_closed" true (Bqueue.is_closed q)

let test_bqueue_close_race () =
  (* producers hammering try_push while close lands concurrently:
     every `Ok item must still come out of pop, and nothing after the
     close is lost half-way *)
  for _ = 1 to 20 do
    let q = Bqueue.create ~capacity:4 in
    let admitted = Atomic.make 0 in
    let producers =
      List.init 4 (fun _ ->
          Thread.create
            (fun () ->
              let rec go n =
                if n = 0 then ()
                else
                  match Bqueue.try_push q n with
                  | `Ok ->
                    Atomic.incr admitted;
                    go (n - 1)
                  | `Full ->
                    Thread.yield ();
                    go n
                  | `Closed -> ()
              in
              go 50)
            ())
    in
    let drained = Atomic.make 0 in
    let consumer =
      Thread.create
        (fun () ->
          let rec go () =
            match Bqueue.pop q with
            | Some _ ->
              Atomic.incr drained;
              go ()
            | None -> ()
          in
          go ())
        ()
    in
    Thread.yield ();
    Bqueue.close q;
    List.iter Thread.join producers;
    Thread.join consumer;
    Alcotest.(check int) "admitted = drained under close race"
      (Atomic.get admitted) (Atomic.get drained)
  done

let test_bqueue_capacity_clamp () =
  (* capacity is clamped to at least 1, so a misconfigured server
     still admits one request at a time instead of livelocking *)
  let q = Bqueue.create ~capacity:0 in
  Alcotest.(check bool) "one slot" true (Bqueue.try_push q 1 = `Ok);
  Alcotest.(check bool) "then full" true (Bqueue.try_push q 2 = `Full);
  Alcotest.(check (option int)) "delivered" (Some 1) (Bqueue.pop q)

(* ---- deadlines ------------------------------------------------------ *)

let test_deadline_cell () =
  let c = Deadline.cell () in
  Alcotest.(check bool) "first fill wins" true (Deadline.fill c 1);
  Alcotest.(check bool) "second fill loses" false (Deadline.fill c 2);
  Alcotest.(check (option int)) "value is first" (Some 1) (Deadline.peek c);
  Alcotest.(check (option int)) "await filled" (Some 1)
    (Deadline.await ~deadline_at:(Deadline.now () +. 1.) c);
  let empty = Deadline.cell () in
  Alcotest.(check (option int)) "await empty times out" None
    (Deadline.await ~deadline_at:(Deadline.now () +. 0.02) empty)

let test_deadline_run () =
  (match Deadline.run ~seconds:1. (fun () -> 7) with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "fast call should complete");
  (match
     Deadline.run ~seconds:0.02 (fun () ->
         Thread.delay 0.3;
         0)
   with
  | Error `Timeout -> ()
  | Ok _ -> Alcotest.fail "slow call should time out");
  match Deadline.run ~seconds:1. (fun () -> failwith "boom") with
  | exception Failure msg when msg = "boom" -> ()
  | _ -> Alcotest.fail "exceptions should re-raise"

let test_deadline_edges () =
  (* a deadline already in the past: an empty cell answers None
     without blocking... *)
  let empty = Deadline.cell () in
  let t0 = Deadline.now () in
  Alcotest.(check (option int))
    "past deadline, empty cell" None
    (Deadline.await ~deadline_at:(Deadline.now () -. 1.) empty);
  Alcotest.(check bool) "and does not block" true (Deadline.now () -. t0 < 0.2);
  (* ...but a FILLED cell still delivers its value, even past the
     deadline — the server's "late result still lands" accounting
     depends on fill winning over the clock *)
  let filled = Deadline.cell () in
  ignore (Deadline.fill filled 9);
  Alcotest.(check (option int))
    "past deadline, filled cell" (Some 9)
    (Deadline.await ~deadline_at:(Deadline.now () -. 1.) filled);
  (* a fill after a timed-out await is the "late" case: it must still
     win the cell (first fill) and be visible to peek *)
  Alcotest.(check bool) "late fill wins" true (Deadline.fill empty 5);
  Alcotest.(check (option int)) "late value lands" (Some 5)
    (Deadline.peek empty)

let test_deadline_fill_race () =
  (* many racing fillers: exactly one wins, and every awaiter sees the
     winner's value *)
  for _ = 1 to 10 do
    let c = Deadline.cell () in
    let wins = Atomic.make 0 in
    let fillers =
      List.init 8 (fun i ->
          Thread.create
            (fun () -> if Deadline.fill c i then Atomic.incr wins)
            ())
    in
    List.iter Thread.join fillers;
    Alcotest.(check int) "exactly one fill wins" 1 (Atomic.get wins);
    match (Deadline.peek c, Deadline.await c) with
    | Some p, Some a -> Alcotest.(check int) "peek = await" p a
    | _ -> Alcotest.fail "winner's value must be visible"
  done

(* ---- catalog -------------------------------------------------------- *)

let tree s = Sxml.Parse.of_string s

let test_catalog_names () =
  let c = Catalog.create () in
  let e = Catalog.add c ~name:"a" (tree "<a><b/></a>") in
  ignore (Catalog.add c ~name:"b" (tree "<x/>"));
  Alcotest.(check (list string)) "names in order" [ "a"; "b" ]
    (Catalog.names c);
  Alcotest.(check bool) "find" true
    (match Catalog.find c "a" with Some x -> x == e | None -> false);
  Alcotest.(check bool) "missing" true (Catalog.find c "zz" = None);
  Alcotest.(check int) "height" 2 (Catalog.height c e);
  Alcotest.(check (option int)) "memoized" (Some 2) (Catalog.memoized_height e)

let test_catalog_intern () =
  let c = Catalog.create ~intern_capacity:2 () in
  let d1 = tree "<a><b/></a>" and d2 = tree "<a/>" and d3 = tree "<a/>" in
  let e1 = Catalog.intern c d1 in
  Alcotest.(check bool) "same tree, same entry" true
    (Catalog.intern c d1 == e1);
  ignore (Catalog.height c e1);
  ignore (Catalog.intern c d2);
  ignore (Catalog.intern c d3);
  (* capacity 2: d1's anonymous entry was evicted, so re-interning
     recomputes the height *)
  let walks_before = Catalog.height_walks c in
  ignore (Catalog.height c (Catalog.intern c d1));
  Alcotest.(check bool) "evicted entry recomputes" true
    (Catalog.height_walks c > walks_before);
  (* named entries never evict *)
  let named = Catalog.add c ~name:"n" d2 in
  Alcotest.(check bool) "named tree interns to named entry" true
    (Catalog.intern c d2 == named)

let test_catalog_height_once_concurrently () =
  let c = Catalog.create () in
  let e = Catalog.add c ~name:"d" (tree "<a><b><c/></b><b/></a>") in
  let results = Array.make 8 0 in
  let threads =
    List.init 8 (fun i ->
        Thread.create (fun () -> results.(i) <- Catalog.height c e) ())
  in
  List.iter Thread.join threads;
  Array.iter (fun h -> Alcotest.(check int) "height" 3 h) results;
  Alcotest.(check int) "one walk for 8 concurrent callers" 1
    (Catalog.height_walks c)

(* ---- pipeline thread-safety ----------------------------------------- *)

let adex_groups () =
  [
    ("re", Workload.Adex.spec);
    ("all", Secview.Spec.make Workload.Adex.dtd []);
  ]

let adex_docs () =
  List.filteri
    (fun i _ -> i < 2)
    (List.map
       (fun ds -> Workload.Datasets.load ds)
       (Workload.Datasets.series ~scale:2 ()))

let test_pipeline_hammer () =
  let dtd = Workload.Adex.dtd in
  let groups = adex_groups () in
  let docs = adex_docs () in
  let cells =
    List.concat_map
      (fun (g, _) ->
        List.concat_map
          (fun (_, q) -> List.map (fun d -> (g, q, d)) docs)
          Workload.Adex.queries)
      groups
  in
  let render ns =
    String.concat "\n" (List.map (fun n -> Sxml.Print.to_string n) ns)
  in
  let reference = Pipeline.Session.create (Pipeline.Service.create dtd ~groups) in
  let expected =
    List.map
      (fun (g, q, d) ->
        render (Pipeline.Session.answer_exn reference ~group:g q d))
      cells
  in
  let service = Pipeline.Service.create dtd ~groups in
  let wrong = Atomic.make 0 in
  let n_threads = 8 and iters = 10 in
  let sessions = Array.make n_threads None in
  let worker i =
    let pipe = Pipeline.Session.of_slot (Pipeline.Service.slot service) in
    sessions.(i) <- Some pipe;
    for _ = 1 to iters do
      List.iter2
        (fun (g, q, d) want ->
          if
            not
              (String.equal
                 (render (Pipeline.Session.answer_exn pipe ~group:g q d))
                 want)
          then Atomic.incr wrong)
        cells expected
    done
  in
  let threads = List.init n_threads (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no wrong answers under contention" 0
    (Atomic.get wrong);
  (* per group, merged over every session: every answer call consults
     the translation cache exactly once, so hits + misses must equal
     the calls issued, and each private cache must have warmed up
     (misses well below calls) *)
  let calls_per_group =
    n_threads * iters * List.length Workload.Adex.queries * List.length docs
  in
  let merged g =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some p ->
          Pipeline.stats_merge acc (Pipeline.Session.stats_of p ~group:g))
      Pipeline.stats_zero sessions
  in
  List.iter
    (fun g ->
      let s : Pipeline.stats = merged g in
      Alcotest.(check int)
        (Printf.sprintf "hits+misses accounted for (%s)" g)
        calls_per_group (s.hits + s.misses);
      Alcotest.(check bool)
        (Printf.sprintf "cache warmed (%s)" g)
        true
        (s.misses < calls_per_group && s.hits > 0);
      (* the default engine consults the plan cache on every call *)
      Alcotest.(check int)
        (Printf.sprintf "plan lookups accounted for (%s)" g)
        calls_per_group
        (s.plan_hits + s.plan_misses);
      Alcotest.(check bool)
        (Printf.sprintf "plan cache warmed (%s)" g)
        true
        (s.plan_misses < calls_per_group && s.plan_hits > 0))
    (Pipeline.Service.order service)

(* ---- multi-domain hammer: readers race one writer ------------------- *)

(* N worker domains, each running M sessions over the shared service,
   answer a fixed query mix against two groups while one coordinator
   domain applies admitted updates.  Every observation is replayed
   post-hoc through a fresh single-threaded session against the exact
   document version the reader pinned: answers must be byte-identical,
   and no reader may ever see the catalog version move backwards. *)
let test_multidomain_hammer () =
  let dtd = Workload.Hospital.dtd in
  let full =
    Secview.Spec.make
      ~write:[ (("patientInfo", "patient"), [ Secview.Spec.Insert ]) ]
      dtd []
  in
  let billing =
    Secview.Spec.of_sidecar dtd
      "dept staffInfo N\ndept clinicalTrial N\nclinicalTrial patientInfo Y\n"
  in
  let groups = [ ("full", full); ("billing", billing) ] in
  let catalog = Catalog.create () in
  let entry =
    Catalog.add catalog ~name:"doc" (Workload.Hospital.sample_document ())
  in
  let svc = Pipeline.Service.create ~catalog dtd ~groups in
  let queries =
    List.map Sxpath.Parse.of_string
      [ "//patient/name"; "//bill"; "//staff"; "//patient" ]
  in
  let render ns =
    String.concat "\n" (List.map (fun n -> Sxml.Print.to_string n) ns)
  in
  let writes = 12 and n_domains = 2 and m_sessions = 2 and rounds = 20 in
  let flock = Mutex.create () in
  let failures = ref [] in
  let fail msg = Mutex.protect flock (fun () -> failures := msg :: !failures) in
  (* the coordinator is the only writer; it retains every version's
     document (from the receipts) for the post-hoc oracle *)
  let versions = ref [ (Catalog.version entry, Catalog.doc entry) ] in
  let coordinator =
    Domain.spawn (fun () ->
        for i = 1 to writes do
          let text =
            Printf.sprintf
              "insert into //patientInfo[patient/name = \"Bob\"] <patient><name>p%d</name><wardNo>6</wardNo><treatment><trial><bill>%d</bill></trial></treatment></patient>"
              i i
          in
          (match Supdate.Engine.apply_text svc ~group:"full" ~entry text with
          | Ok r ->
            versions :=
              (r.Supdate.Engine.r_new_version, r.Supdate.Engine.r_doc)
              :: !versions
          | Error e -> fail ("write rejected: " ^ Secview.Error.to_code e));
          Thread.yield ()
        done)
  in
  let readers =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            let sessions =
              List.init m_sessions (fun _ ->
                  Pipeline.Session.of_slot (Pipeline.Service.slot svc))
            in
            let obs = ref [] in
            let last_v = ref 0 in
            for _ = 1 to rounds do
              List.iter
                (fun sess ->
                  List.iter
                    (fun (g, _) ->
                      List.iteri
                        (fun qi q ->
                          let snap = Catalog.pin entry in
                          let v = Catalog.snapshot_version snap in
                          let doc = Catalog.snapshot_doc snap in
                          if v < !last_v then
                            fail "snapshot version went backwards";
                          last_v := v;
                          let bytes =
                            render
                              (Pipeline.Session.answer_exn sess ~group:g q doc)
                          in
                          obs := (g, qi, v, bytes) :: !obs)
                        queries)
                    groups)
                sessions
            done;
            !obs))
  in
  Domain.join coordinator;
  let all_obs = List.concat_map Domain.join readers in
  (match !failures with
  | [] -> ()
  | msgs -> Alcotest.failf "hammer failures: %s" (String.concat "; " msgs));
  let vmap = !versions in
  Alcotest.(check int) "every write admitted" (writes + 1) (List.length vmap);
  let oracle = Pipeline.Session.create (Pipeline.Service.create dtd ~groups) in
  List.iter
    (fun (g, qi, v, bytes) ->
      match List.assoc_opt v vmap with
      | None ->
        Alcotest.failf "version tearing: v%d was never produced by the writer"
          v
      | Some doc ->
        let want =
          render
            (Pipeline.Session.answer_exn oracle ~group:g (List.nth queries qi)
               doc)
        in
        if not (String.equal want bytes) then
          Alcotest.failf "answer diverges from the oracle (group %s, q%d, v%d)"
            g qi v)
    all_obs;
  Alcotest.(check int) "observations recorded"
    (n_domains * m_sessions * rounds * List.length groups
   * List.length queries)
    (List.length all_obs)

(* ---- the server over a real socket ---------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let connect path =
  let give_up = Deadline.now () +. 5. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> (fd, Unix.in_channel_of_descr fd)
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
      when Deadline.now () < give_up ->
      Unix.close fd;
      Thread.delay 0.02;
      go ()
  in
  go ()

let send fd json = write_all fd (J.to_string json ^ "\n")
let send_raw fd line = write_all fd (line ^ "\n")

let recv ic =
  match J.of_string (input_line ic) with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparsable reply: %s" e

let reply_ok j =
  match J.member "ok" j with Some (J.Bool b) -> b | _ -> false

let reply_code j =
  match J.member "code" j with Some (J.String c) -> Some c | _ -> None

let check_code what want j =
  if reply_ok j then Alcotest.failf "%s unexpectedly succeeded" what;
  Alcotest.(check (option string)) what (Some want) (reply_code j)

let with_server ?config ?audit ?recorder ?tracer ?runtime ~docs () k =
  let dtd = Workload.Adex.dtd in
  let catalog = Catalog.create () in
  List.iter (fun (n, d) -> ignore (Catalog.add catalog ~name:n d)) docs;
  let service = Pipeline.Service.create ~catalog dtd ~groups:(adex_groups ()) in
  let server = Server.create ?config ?audit ?recorder ?tracer ?runtime service in
  let path = Filename.temp_file "secview-test" ".sock" in
  Sys.remove path;
  let th =
    Thread.create (fun () -> Server.serve server [ Server.Unix_socket path ]) ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* idempotent: tests that already drained just re-request *)
      Server.request_drain server;
      Thread.join th)
    (fun () -> k server path)

let test_server_roundtrips () =
  let doc = List.hd (adex_docs ()) in
  with_server ~docs:[ ("d1", doc) ] () @@ fun _server path ->
  let fd, ic = connect path in
  send fd (Protocol.simple "ping");
  Alcotest.(check bool) "pong" true (reply_ok (recv ic));
  (* queries before hello are refused *)
  send fd (Protocol.query_json "//house");
  check_code "no session" Protocol.no_session (recv ic);
  send fd (Protocol.hello ~peer:"tests" "nosuch");
  check_code "unknown group" Protocol.unknown_group (recv ic);
  send_raw fd "this is not json";
  check_code "bad json" Protocol.bad_request (recv ic);
  send fd (Protocol.hello ~peer:"tests" "re");
  let j = recv ic in
  Alcotest.(check bool) "hello ok" true (reply_ok j);
  Alcotest.(check bool) "session id" true (J.member "session" j <> None);
  (* the answer matches the single-threaded pipeline byte for byte *)
  let expected =
    let reference =
      Pipeline.Session.create
        (Pipeline.Service.create Workload.Adex.dtd ~groups:(adex_groups ()))
    in
    List.map
      (fun n -> Sxml.Print.to_string n)
      (Pipeline.Session.answer_exn reference ~group:"re"
         (Sxpath.Parse.of_string "//house") doc)
  in
  send fd (Protocol.query_json ~doc:"d1" "//house");
  let j = recv ic in
  Alcotest.(check bool) "query ok" true (reply_ok j);
  (match J.member "results" j with
  | Some (J.List rs) ->
    Alcotest.(check (list string))
      "byte-identical to Pipeline.answer" expected
      (List.filter_map J.to_string_opt rs)
  | _ -> Alcotest.fail "no results field");
  send fd (Protocol.query_json ~doc:"zz" "//house");
  check_code "unknown document" Protocol.unknown_document (recv ic);
  send fd (Protocol.query_json ~doc:"d1" "//house[");
  check_code "query parse error" Protocol.query_error (recv ic);
  send fd (Protocol.simple "stats");
  let j = recv ic in
  Alcotest.(check bool) "stats ok" true (reply_ok j);
  Alcotest.(check bool) "stats counters" true (J.member "counters" j <> None);
  (* a plain server refuses the debug sleep command *)
  send_raw fd "{\"cmd\":\"sleep\",\"ms\":1}";
  check_code "sleep needs debug" Protocol.bad_request (recv ic);
  Unix.close fd

let test_server_overload () =
  let config =
    { Server.default_config with domains = 1; queue_capacity = 1; debug = true }
  in
  with_server ~config ~docs:[ ("d1", List.hd (adex_docs ())) ] ()
  @@ fun _server path ->
  let c1, ic1 = connect path in
  let c2, ic2 = connect path in
  let c3, ic3 = connect path in
  (* c1 occupies the only worker, c2 fills the only queue slot, c3
     must be turned away immediately — not enqueued, not hung *)
  send_raw c1 "{\"cmd\":\"sleep\",\"ms\":400}";
  Thread.delay 0.1;
  send_raw c2 "{\"cmd\":\"sleep\",\"ms\":10}";
  Thread.delay 0.1;
  let t0 = Deadline.now () in
  send_raw c3 "{\"cmd\":\"sleep\",\"ms\":10}";
  let j3 = recv ic3 in
  let waited = Deadline.now () -. t0 in
  check_code "third request refused" Protocol.overloaded j3;
  Alcotest.(check bool) "refused immediately, not queued" true (waited < 0.25);
  Alcotest.(check bool) "first completes" true (reply_ok (recv ic1));
  Alcotest.(check bool) "queued one completes" true (reply_ok (recv ic2));
  List.iter Unix.close [ c1; c2; c3 ]

let test_server_timeout () =
  let config =
    { Server.default_config with domains = 1; deadline = Some 0.05;
      debug = true }
  in
  with_server ~config ~docs:[ ("d1", List.hd (adex_docs ())) ] ()
  @@ fun _server path ->
  let fd, ic = connect path in
  send_raw fd "{\"cmd\":\"sleep\",\"ms\":300}";
  check_code "deadline exceeded" Protocol.timeout (recv ic);
  Unix.close fd

let test_server_rid_and_flight () =
  let doc = List.hd (adex_docs ()) in
  let recorder = Sobs.Recorder.create ~capacity:8 in
  with_server ~recorder ~docs:[ ("d1", doc) ] () @@ fun _server path ->
  let fd, ic = connect path in
  let rid_of j = Option.bind (J.member "rid" j) J.to_string_opt in
  (* a server-generated rid on every reply, r<session>-<n> shaped *)
  send fd (Protocol.simple "ping");
  (match rid_of (recv ic) with
  | Some r when String.length r > 1 && r.[0] = 'r' -> ()
  | other ->
    Alcotest.failf "expected a generated rid, got %s"
      (Option.value ~default:"<none>" other));
  (* the client's rid wins and is echoed verbatim, on success... *)
  send_raw fd "{\"cmd\":\"ping\",\"rid\":\"mine-1\"}";
  Alcotest.(check (option string)) "client rid echoed" (Some "mine-1")
    (rid_of (recv ic));
  (* ...and on error replies, even for lines that are not commands *)
  send_raw fd "{\"cmd\":\"frob\",\"rid\":\"mine-2\"}";
  let j = recv ic in
  Alcotest.(check bool) "frob refused" false (reply_ok j);
  Alcotest.(check (option string)) "rid on error reply" (Some "mine-2")
    (rid_of j);
  (* the flight recorder retains the answered query in full fidelity,
     keyed by the same rid the reply carried *)
  send fd (Protocol.hello ~peer:"tests" "re");
  Alcotest.(check bool) "hello" true (reply_ok (recv ic));
  send fd (Protocol.query_json ~rid:"fq-1" ~doc:"d1" "//house");
  Alcotest.(check bool) "query ok" true (reply_ok (recv ic));
  send fd (Protocol.simple "flight");
  let j = recv ic in
  Alcotest.(check bool) "flight ok" true (reply_ok j);
  (match J.member "entries" j with
  | Some (J.List es) ->
    Alcotest.(check bool) "recorder holds the query under its rid" true
      (List.exists
         (fun e ->
           rid_of e = Some "fq-1"
           && Option.is_some
                (Option.bind (J.member "digest" e) J.to_string_opt))
         es)
  | _ -> Alcotest.fail "flight reply has no entries");
  Unix.close fd

let test_server_gc_attribution () =
  let doc = List.hd (adex_docs ()) in
  let recorder = Sobs.Recorder.create ~capacity:8 in
  let tracer = Sobs.Tracer.create ~retain:false () in
  Sobs.Tracer.install tracer;
  let runtime = Sobs.Runtime.offline () in
  (* a synthetic pause so wide every request's span window overlaps
     it: the flight entry must carry a non-zero attribution *)
  Sobs.Runtime.inject_pause runtime ~domain:0 ~kind:Sobs.Runtime.Minor
    ~start_ns:0L ~stop_ns:Int64.max_int;
  Fun.protect ~finally:Sobs.Tracer.uninstall @@ fun () ->
  with_server ~recorder ~tracer ~runtime ~docs:[ ("d1", doc) ] ()
  @@ fun _server path ->
  let fd, ic = connect path in
  send fd (Protocol.hello ~peer:"tests" "re");
  Alcotest.(check bool) "hello" true (reply_ok (recv ic));
  send fd (Protocol.query_json ~rid:"gc-1" ~doc:"d1" "//house");
  Alcotest.(check bool) "query ok" true (reply_ok (recv ic));
  send fd (Protocol.simple "flight");
  let j = recv ic in
  Alcotest.(check bool) "flight ok" true (reply_ok j);
  (match J.member "entries" j with
  | Some (J.List es) -> (
    match
      List.find_opt
        (fun e ->
          Option.bind (J.member "rid" e) J.to_string_opt = Some "gc-1")
        es
    with
    | Some e ->
      let ms =
        Option.value ~default:0.
          (Option.bind (J.member "gc_pause_ms" e) J.to_float_opt)
      in
      let n =
        Option.value ~default:0
          (Option.bind (J.member "gc_pauses" e) J.to_int_opt)
      in
      Alcotest.(check bool)
        (Printf.sprintf "overlapping pause stamped (%g ms)" ms)
        true (ms > 0.);
      Alcotest.(check int) "one pause episode" 1 n
    | None -> Alcotest.fail "no flight entry for gc-1")
  | _ -> Alcotest.fail "flight reply has no entries");
  (* the stats verb carries the runtime section with the same pause *)
  send fd (Protocol.simple "stats");
  let j = recv ic in
  Alcotest.(check bool) "stats ok" true (reply_ok j);
  (match J.member "runtime" j with
  | Some rt ->
    Alcotest.(check (option bool)) "runtime enabled" (Some true)
      (Option.bind (J.member "enabled" rt) J.to_bool_opt);
    Alcotest.(check int) "one pause total" 1
      (Option.value ~default:0
         (Option.bind (J.member "pauses_total" rt) J.to_int_opt))
  | None -> Alcotest.fail "stats reply has no runtime section");
  Unix.close fd

let check_audit buf queries =
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  let requests =
    List.filter_map
      (fun l ->
        match J.of_string l with
        | Ok j when J.member "type" j = Some (J.String "request") -> Some j
        | Ok _ -> None
        | Error e -> Alcotest.failf "orphan/partial audit line %S: %s" l e)
      lines
  in
  Alcotest.(check int) "one audit record per admitted query"
    (List.length queries) (List.length requests);
  List.iter
    (fun j ->
      Alcotest.(check (option string))
        "group stamped" (Some "re")
        (Option.bind (J.member "group" j) J.to_string_opt);
      Alcotest.(check (option string))
        "peer stamped" (Some "audit-test")
        (Option.bind (J.member "peer" j) J.to_string_opt);
      Alcotest.(check (option string))
        "status ok" (Some "ok")
        (Option.bind (J.member "status" j) J.to_string_opt);
      Alcotest.(check bool) "rid stamped" true
        (Option.is_some (Option.bind (J.member "rid" j) J.to_string_opt)))
    requests

let test_server_drain_audit () =
  let buf = Buffer.create 512 in
  let audit = Sobs.Audit_log.create (Sobs.Audit_log.Buffer buf) in
  let doc = List.hd (adex_docs ()) in
  let queries = [ "//house"; "//apartment"; "//house/location" ] in
  with_server ~audit ~docs:[ ("d1", doc) ] () (fun _server path ->
      let fd, ic = connect path in
      send fd (Protocol.hello ~peer:"audit-test" "re");
      Alcotest.(check bool) "hello" true (reply_ok (recv ic));
      List.iter
        (fun q ->
          send fd (Protocol.query_json ~doc:"d1" q);
          Alcotest.(check bool) q true (reply_ok (recv ic)))
        queries;
      send fd (Protocol.simple "shutdown");
      Alcotest.(check bool) "shutdown acknowledged" true (reply_ok (recv ic));
      Unix.close fd);
  (* with_server joined the server thread on the way out, so the
     audit buffer is complete: every admitted query has its record *)
  check_audit buf queries

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          Alcotest.test_case "round trips" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "round trips" `Quick test_protocol_roundtrip;
          Alcotest.test_case "request ids" `Quick test_protocol_rid;
          Alcotest.test_case "rejects bad requests" `Quick
            test_protocol_rejects;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "bounded fifo" `Quick test_bqueue;
          Alcotest.test_case "concurrent producers/consumers" `Quick
            test_bqueue_threads;
          Alcotest.test_case "close wakes empty pop" `Quick
            test_bqueue_close_wakes_empty_pop;
          Alcotest.test_case "close races producers" `Quick
            test_bqueue_close_race;
          Alcotest.test_case "capacity clamp" `Quick test_bqueue_capacity_clamp;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "first fill wins" `Quick test_deadline_cell;
          Alcotest.test_case "run with timeout" `Quick test_deadline_run;
          Alcotest.test_case "past deadlines and late fills" `Quick
            test_deadline_edges;
          Alcotest.test_case "racing fills" `Quick test_deadline_fill_race;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "named entries" `Quick test_catalog_names;
          Alcotest.test_case "interning + eviction" `Quick test_catalog_intern;
          Alcotest.test_case "height computed once" `Quick
            test_catalog_height_once_concurrently;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "hammer: determinism + stats" `Slow
            test_pipeline_hammer;
          Alcotest.test_case "hammer: domains + writer vs oracle" `Slow
            test_multidomain_hammer;
        ] );
      ( "server",
        [
          Alcotest.test_case "round trips" `Quick test_server_roundtrips;
          Alcotest.test_case "request ids and flight" `Quick
            test_server_rid_and_flight;
          Alcotest.test_case "gc pause attribution" `Quick
            test_server_gc_attribution;
          Alcotest.test_case "overload" `Quick test_server_overload;
          Alcotest.test_case "deadline" `Quick test_server_timeout;
          Alcotest.test_case "drain flushes audit" `Quick
            test_server_drain_audit;
        ] );
    ]
