(* The update subsystem: language round-trips, grant semantics
   (default deny, per-op grants), reject-on-inaccessible-target
   atomicity, exact cache invalidation, and snapshot isolation under
   a concurrent writer. *)

module Pipeline = Secview.Pipeline
module Catalog = Secview.Catalog
module Spec = Secview.Spec
module Engine = Supdate.Engine
module Parse = Supdate.Parse

let parse = Sxpath.Parse.of_string

let eval p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~root:doc ()) p

let dtd = Workload.Hospital.dtd

(* A group that sees the whole document (no annotations: everything
   inherits the root's Y), with the given write grants. *)
let open_spec grants = Spec.make ~write:grants dtd []

(* The nurse policy of [Workload.Hospital], plus write grants — the
   workload's own [nurse_spec] is read-only by design. *)
let nurse_spec grants =
  Spec.make ~write:grants dtd
    [
      ( ("hospital", "dept"),
        Spec.Cond (Sxpath.Parse.qual_of_string "*/patient/wardNo = $wardNo") );
      (("dept", "clinicalTrial"), Spec.No);
      (("clinicalTrial", "patientInfo"), Spec.Yes);
      (("treatment", "trial"), Spec.No);
      (("treatment", "regular"), Spec.No);
      (("trial", "bill"), Spec.Yes);
      (("regular", "bill"), Spec.Yes);
      (("regular", "medication"), Spec.Yes);
    ]

let setup spec =
  let catalog = Catalog.create () in
  let entry =
    Catalog.add catalog ~name:"doc" (Workload.Hospital.sample_document ())
  in
  let svc = Pipeline.Service.create ~catalog dtd ~groups:[ ("g", spec) ] in
  (svc, entry)

(* Everything a rejected update must leave bit-for-bit unchanged. *)
let fingerprint svc sess entry =
  let s : Pipeline.stats = Pipeline.Session.stats_of sess ~group:"g" in
  ( Catalog.version entry,
    Pipeline.Service.generation svc,
    Sxml.Print.to_string (Catalog.doc entry),
    (s.hits, s.misses, s.plan_hits, s.plan_misses) )

let check_rejected ?env ~code svc entry text =
  let sess = Pipeline.Session.create svc in
  let before = fingerprint svc sess entry in
  let pinned = Catalog.pin entry in
  (match Engine.apply_text svc ~group:"g" ?env ~entry text with
  | Ok _ -> Alcotest.failf "update %S was admitted" text
  | Error e ->
      Alcotest.(check string) "error code" code (Secview.Error.to_code e));
  let after = fingerprint svc sess entry in
  Alcotest.(check bool) "reject leaves everything untouched" true
    (before = after);
  let pinned' = Catalog.pin entry in
  Alcotest.(check int) "current snapshot version unchanged"
    (Catalog.snapshot_version pinned)
    (Catalog.snapshot_version pinned');
  Alcotest.(check bool) "current snapshot tree physically unchanged" true
    (Catalog.snapshot_doc pinned == Catalog.snapshot_doc pinned')

let count_patients doc = List.length (eval (parse "//patient") doc)

(* --- language ------------------------------------------------------ *)

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      let u = Parse.of_string s in
      let printed = Parse.to_string u in
      Alcotest.(check string)
        (Printf.sprintf "round-trip of %S" s)
        printed
        (Parse.to_string (Parse.of_string printed)))
    [
      "insert into //patientInfo <patient><name>Zed</name></patient>";
      "insert before //patient[name = \"Bob\"] <patient><name>A</name></patient>";
      "insert after //dept/patientInfo/patient <note>x</note>";
      "delete //patient[name = \"Bob\"]";
      "replace //patient[name = \"Carol\"]/treatment with <treatment><trial><bill>1</bill></trial></treatment>";
    ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Parse.of_string_result s with
      | Ok _ -> Alcotest.failf "parsed malformed update %S" s
      | Error _ -> ())
    [
      "";
      "delete";
      "insert //x <a/>";
      "insert sideways //x <a/>";
      "insert into //x";
      "insert into //x not-xml";
      "replace //x <a/>";
      "replace //x with";
      "frobnicate //x";
    ]

(* --- grants -------------------------------------------------------- *)

let test_default_deny () =
  (* A spec without grants is read-only: every operation is denied,
     even for a group that can see the whole document. *)
  let svc, entry = setup (open_spec []) in
  List.iter
    (fun text -> check_rejected ~code:"update_denied" svc entry text)
    [
      "delete //patient[name = \"Bob\"]";
      "insert into //patientInfo[patient/name = \"Bob\"] <patient><name>Zed</name><wardNo>6</wardNo><treatment><trial><bill>1</bill></trial></treatment></patient>";
      "replace //patient[name = \"Bob\"]/treatment/regular/medication with <medication>zzz</medication>";
    ]

let test_grants_are_per_op () =
  let svc, entry =
    setup (open_spec [ (("patientInfo", "patient"), [ Spec.Delete ]) ])
  in
  (* delete is granted on the edge, insert and replace are not *)
  check_rejected ~code:"update_denied" svc entry
    "insert into //patientInfo[patient/name = \"Bob\"] <patient><name>Zed</name><wardNo>6</wardNo><treatment><trial><bill>1</bill></trial></treatment></patient>";
  check_rejected ~code:"update_denied" svc entry
    "replace //patient[name = \"Bob\"] with <patient><name>Rob</name><wardNo>6</wardNo><treatment><trial><bill>1</bill></trial></treatment></patient>";
  match
    Engine.apply_text svc ~group:"g" ~entry "delete //patient[name = \"Bob\"]"
  with
  | Error e -> Alcotest.failf "granted delete rejected: %s" (Secview.Error.to_code e)
  | Ok r ->
      Alcotest.(check int) "one target" 1 r.Engine.r_targets;
      Alcotest.(check string) "op" "delete" r.Engine.r_op

let test_ungranted_edge_denied () =
  (* The grant names one edge; a target attached elsewhere stays
     unwritable. *)
  let svc, entry =
    setup (open_spec [ (("patientInfo", "patient"), Spec.all_write_ops) ])
  in
  check_rejected ~code:"update_denied" svc entry "delete //staff[nurse/name = \"Nina\"]"

(* --- accepted updates --------------------------------------------- *)

let test_accepted_delete () =
  let svc, entry =
    setup (open_spec [ (("patientInfo", "patient"), [ Spec.Delete ]) ])
  in
  let pinned = Catalog.pin entry in
  let v0 = Catalog.version entry in
  let g0 = Pipeline.Service.generation svc in
  match
    Engine.apply_text svc ~group:"g" ~entry "delete //patient[name = \"Bob\"]"
  with
  | Error e -> Alcotest.failf "delete rejected: %s" (Secview.Error.to_code e)
  | Ok r ->
      Alcotest.(check int) "old version" v0 r.Engine.r_old_version;
      Alcotest.(check bool) "version bumped" true (r.Engine.r_new_version > v0);
      Alcotest.(check int) "catalog holds the new version"
        r.Engine.r_new_version (Catalog.version entry);
      Alcotest.(check int) "generation bumped once" (g0 + 1)
        (Pipeline.Service.generation svc);
      Alcotest.(check int) "one patient fewer" 4
        (count_patients (Catalog.doc entry));
      (* the pinned reader still sees Bob: snapshots are immutable *)
      Alcotest.(check int) "pinned snapshot untouched" 5
        (count_patients (Catalog.snapshot_doc pinned));
      Alcotest.(check bool) "Bob gone from the view" true
        (eval (parse "//patient[name = \"Bob\"]") (Catalog.doc entry) = [])

let test_accepted_insert_and_replace () =
  let svc, entry =
    setup
      (open_spec [ (("patientInfo", "patient"), [ Spec.Insert; Spec.Replace ]) ])
  in
  (match
     Engine.apply_text svc ~group:"g" ~entry
       "insert into //patientInfo[patient/name = \"Bob\"] <patient><name>Zed</name><wardNo>6</wardNo><treatment><regular><bill>7</bill><medication>ibu</medication></regular></treatment></patient>"
   with
  | Error e -> Alcotest.failf "insert rejected: %s" (Secview.Error.to_code e)
  | Ok r ->
      Alcotest.(check string) "op" "insert" r.Engine.r_op;
      Alcotest.(check int) "six patients" 6 (count_patients (Catalog.doc entry)));
  match
    Engine.apply_text svc ~group:"g" ~entry
      "replace //patient[name = \"Zed\"] with <patient><name>Zed</name><wardNo>6</wardNo><treatment><regular><bill>7</bill><medication>asa</medication></regular></treatment></patient>"
  with
  | Error e -> Alcotest.failf "replace rejected: %s" (Secview.Error.to_code e)
  | Ok _ ->
      Alcotest.(check bool) "replacement visible" true
        (eval (parse "//patient[name = \"Zed\"]//medication[. = \"asa\"]")
           (Catalog.doc entry)
        <> [])

let test_replace_medication_needs_regular_grant () =
  (* the medication edge is (regular, medication), not the patient
     edge the other tests grant *)
  let svc, entry =
    setup (open_spec [ (("regular", "medication"), [ Spec.Replace ]) ])
  in
  match
    Engine.apply_text svc ~group:"g" ~entry
      "replace //patient[name = \"Carol\"]/treatment/regular/medication with <medication>new</medication>"
  with
  | Error e -> Alcotest.failf "rejected: %s" (Secview.Error.to_code e)
  | Ok r -> Alcotest.(check int) "one target" 1 r.Engine.r_targets

(* --- DTD conformance and target validity --------------------------- *)

let test_dtd_violation_rejected () =
  let svc, entry =
    setup (open_spec [ (("patient", "name"), Spec.all_write_ops) ])
  in
  (* a second <name> breaks patient -> (name, wardNo, treatment) *)
  check_rejected ~code:"invalid_update" svc entry
    "insert into //patient[name = \"Bob\"] <name>Robert</name>";
  (* deleting a mandatory child breaks the production too *)
  check_rejected ~code:"invalid_update" svc entry
    "delete //patient[name = \"Bob\"]/name"

let test_empty_target_rejected () =
  let svc, entry =
    setup (open_spec [ (("patientInfo", "patient"), Spec.all_write_ops) ])
  in
  check_rejected ~code:"invalid_update" svc entry
    "delete //patient[name = \"Nobody\"]"

let test_stored_view_group_denied () =
  (* A stored-view group carries no policy, hence no grants: every
     update is rejected outright. *)
  let source, _ = setup (open_spec []) in
  let view = Pipeline.Service.view source ~group:"g" in
  let catalog = Catalog.create () in
  let entry =
    Catalog.add catalog ~name:"doc" (Workload.Hospital.sample_document ())
  in
  let svc =
    Pipeline.Service.create_with_views ~catalog dtd ~groups:[ ("g", view) ]
  in
  check_rejected ~code:"update_denied" svc entry
    "delete //patient[name = \"Bob\"]"

(* --- policy semantics over a restricted view ----------------------- *)

let env = Workload.Hospital.nurse_env "6"

let test_nurse_subtree_with_hidden_nodes () =
  (* Every ward-6 patient subtree contains a hidden <trial>/<regular>
     element; deleting one would destroy data the nurse cannot see. *)
  let svc, entry =
    setup (nurse_spec [ (("patientInfo", "patient"), [ Spec.Delete ]) ])
  in
  check_rejected ~env ~code:"update_denied" svc entry
    "delete //patient[name = \"Bob\"]"

let test_nurse_cannot_write_unreadable_content () =
  (* An inserted patient's treatment is hidden from the nurse in the
     resulting document — the group may not write what it could not
     read back. *)
  let svc, entry =
    setup (nurse_spec [ (("patientInfo", "patient"), [ Spec.Insert ]) ])
  in
  check_rejected ~env ~code:"update_denied" svc entry
    "insert into //patientInfo[patient/name = \"Bob\"] <patient><name>Zed</name><wardNo>6</wardNo><treatment><regular><bill>7</bill><medication>ibu</medication></regular></treatment></patient>"

let test_nurse_can_update_visible_leaf () =
  (* bill is visible and its edge granted: the write goes through. *)
  let svc, entry =
    setup (nurse_spec [ (("regular", "bill"), [ Spec.Replace ]) ])
  in
  match
    Engine.apply_text svc ~group:"g" ~env ~entry
      "replace //patient[name = \"Carol\"]//bill with <bill>85</bill>"
  with
  | Error e -> Alcotest.failf "rejected: %s" (Secview.Error.to_code e)
  | Ok _ ->
      Alcotest.(check bool) "new bill visible" true
        (eval (parse "//patient[name = \"Carol\"]//bill[. = \"85\"]")
           (Catalog.doc entry)
        <> [])

(* Only the ward qualifier, everything else inherited: every node of a
   qualifying dept is visible, so admission comes down to whether the
   edit preserves the accessibility of what it does not touch. *)
let ward_cond_spec grants =
  Spec.make ~write:grants dtd
    [
      ( ("hospital", "dept"),
        Spec.Cond (Sxpath.Parse.qual_of_string "*/patient/wardNo = $wardNo") );
    ]

let test_qualifier_flip_denied () =
  let svc, entry =
    setup (ward_cond_spec [ (("patientInfo", "patient"), [ Spec.Delete ]) ])
  in
  (* deleting one of two qualifying patients flips no qualifier: the
     dept still qualifies through Carol, so the write is admitted *)
  (match
     Engine.apply_text svc ~group:"g" ~env ~entry
       "delete //patient[name = \"Bob\"]"
   with
  | Error e ->
    Alcotest.failf "qualifier-preserving delete rejected: %s"
      (Secview.Error.to_code e)
  | Ok _ -> ());
  (* deleting every remaining ward-6 patient falsifies the dept
     qualifier: staff and trial data the update never touched would
     flip invisible — WITH CHECK OPTION denies the edit atomically *)
  check_rejected ~env ~code:"update_denied" svc entry
    "delete //patient[wardNo = \"6\"]"

let test_denial_text_is_sanitized () =
  (* client-facing denial text must not name node ids (dense preorder
     positions map out hidden subtrees); the id-bearing reason goes to
     the audit callback only *)
  let svc, entry =
    setup (nurse_spec [ (("patientInfo", "patient"), [ Spec.Delete ]) ])
  in
  let detail = ref None in
  match
    Engine.apply_text svc ~group:"g" ~env
      ~audit:(fun d -> detail := Some d)
      ~entry "delete //patient[name = \"Bob\"]"
  with
  | Ok _ -> Alcotest.fail "hidden-subtree delete admitted"
  | Error e ->
    let has_digit s = String.exists (fun c -> c >= '0' && c <= '9') s in
    Alcotest.(check bool) "no node id in the client text" false
      (has_digit (Secview.Error.to_string e));
    (match !detail with
    | None -> Alcotest.fail "denial produced no audit detail"
    | Some d ->
      Alcotest.(check bool) "audit detail names the node id" true
        (has_digit d))

let test_receipt_digest_is_view_scoped () =
  (* the receipt digest is of the group's view of the result — a raw
     document digest would be an equality oracle on hidden regions *)
  let svc, entry =
    setup (nurse_spec [ (("regular", "bill"), [ Spec.Replace ]) ])
  in
  match
    Engine.apply_text svc ~group:"g" ~env ~entry
      "replace //patient[name = \"Carol\"]//bill with <bill>85</bill>"
  with
  | Error e -> Alcotest.failf "rejected: %s" (Secview.Error.to_code e)
  | Ok rc ->
    let full =
      Digest.to_hex (Digest.string (Sxml.Print.to_string rc.Engine.r_doc))
    in
    Alcotest.(check int) "md5 hex" 32 (String.length rc.Engine.r_view_digest);
    Alcotest.(check bool) "not the raw document's digest" true
      (rc.Engine.r_view_digest <> full)

let test_text_content_typed_error () =
  (* a library caller handing Check bare-text content gets a typed
     Invalid_update, not an assertion failure *)
  let svc, entry =
    setup (open_spec [ (("patientInfo", "patient"), Spec.all_write_ops) ])
  in
  let sess = Pipeline.Session.create svc in
  List.iter
    (fun u ->
      let before = fingerprint svc sess entry in
      (match Engine.apply svc ~group:"g" ~entry u with
      | Ok _ -> Alcotest.fail "bare-text content admitted"
      | Error e ->
        Alcotest.(check string) "typed error" "invalid_update"
          (Secview.Error.to_code e));
      Alcotest.(check bool) "reject leaves everything untouched" true
        (before = fingerprint svc sess entry))
    [
      Supdate.Ast.Insert
        {
          pos = Supdate.Ast.Into;
          target = parse "//patientInfo";
          content = Sxml.Tree.T "boom";
        };
      Supdate.Ast.Replace
        {
          target = parse "//patient[name = \"Bob\"]";
          content = Sxml.Tree.T "boom";
        };
    ]

let test_nurse_other_ward_out_of_view () =
  (* Dave is in ward 7: his subtree is simply not in the ward-6 view,
     so the target set is empty — invalid, not silently zero. *)
  let svc, entry =
    setup (nurse_spec [ (("patientInfo", "patient"), Spec.all_write_ops) ])
  in
  check_rejected ~env ~code:"invalid_update" svc entry
    "delete //patient[name = \"Dave\"]"

(* --- cache invalidation ------------------------------------------- *)

let test_invalidation_is_per_document () =
  let catalog = Catalog.create () in
  let a = Catalog.add catalog ~name:"a" (Workload.Hospital.sample_document ()) in
  let b = Catalog.add catalog ~name:"b" (Workload.Hospital.sample_document ()) in
  let svc =
    Pipeline.Service.create ~catalog dtd
      ~groups:
        [ ("g", open_spec [ (("patientInfo", "patient"), [ Spec.Insert ]) ]) ]
  in
  let pipe = Pipeline.Session.create svc in
  let qa = parse "//patient/name" and qb = parse "//staff" in
  let run q e =
    ignore (Pipeline.Session.answer_exn pipe ~group:"g" q (Catalog.doc e))
  in
  run qa a;
  run qa a;
  run qb b;
  run qb b;
  let s0 : Pipeline.stats = Pipeline.Session.stats_of pipe ~group:"g" in
  Alcotest.(check (pair int int)) "warm: one miss then one hit per doc" (2, 2)
    (s0.hits, s0.misses);
  (match
     Engine.apply_text svc ~group:"g" ~entry:a
       "insert into //patientInfo[patient/name = \"Bob\"] <patient><name>Zed</name><wardNo>6</wardNo><treatment><trial><bill>1</bill></trial></treatment></patient>"
   with
  | Error e -> Alcotest.failf "insert rejected: %s" (Secview.Error.to_code e)
  | Ok _ -> ());
  run qb b;
  let s1 : Pipeline.stats = Pipeline.Session.stats_of pipe ~group:"g" in
  Alcotest.(check int) "b's entry survived a's invalidation" (s0.hits + 1)
    s1.hits;
  run qa a;
  let s2 : Pipeline.stats = Pipeline.Session.stats_of pipe ~group:"g" in
  Alcotest.(check int) "a's entry was evicted" (s0.misses + 1)
    s2.misses

(* --- snapshot isolation under concurrency -------------------------- *)

let test_snapshot_isolation_hammer () =
  let writes = 20 and readers = 4 and reads = 60 in
  let svc, entry =
    setup (open_spec [ (("patientInfo", "patient"), [ Spec.Insert ]) ])
  in
  let v0 = Catalog.version entry in
  let q = parse "//patient" in
  let failures = ref [] in
  let flock = Mutex.create () in
  let fail msg = Mutex.protect flock (fun () -> failures := msg :: !failures) in
  let writer () =
    for i = 1 to writes do
      let text =
        Printf.sprintf
          "insert into //patientInfo[patient/name = \"Bob\"] <patient><name>p%d</name><wardNo>6</wardNo><treatment><trial><bill>%d</bill></trial></treatment></patient>"
          i i
      in
      match Engine.apply_text svc ~group:"g" ~entry text with
      | Ok _ -> Thread.yield ()
      | Error e -> fail ("write rejected: " ^ Secview.Error.to_code e)
    done
  in
  let reader () =
    let pipe = Pipeline.Session.of_slot (Pipeline.Service.slot svc) in
    let last_version = ref 0 in
    for _ = 1 to reads do
      let snap = Catalog.pin entry in
      let v = Catalog.snapshot_version snap in
      let doc = Catalog.snapshot_doc snap in
      if v < !last_version then fail "snapshot version went backwards";
      last_version := v;
      let c1 = count_patients doc in
      Thread.yield ();
      (* the pinned tree must be internally consistent however many
         writes land after the pin: same count, same serialization,
         same answer through the full pipeline *)
      let c2 = count_patients (Catalog.snapshot_doc snap) in
      if c1 <> c2 then fail "torn read: counts differ within one snapshot";
      if c1 < 5 || c1 > 5 + writes then
        fail (Printf.sprintf "impossible patient count %d" c1);
      let via_pipe =
        List.length (Pipeline.Session.answer_exn pipe ~group:"g" q doc)
      in
      if via_pipe <> c1 then fail "pipeline answer disagrees with snapshot"
    done
  in
  let threads =
    Thread.create writer ()
    :: List.init readers (fun _ -> Thread.create reader ())
  in
  List.iter Thread.join threads;
  (match !failures with
  | [] -> ()
  | msgs -> Alcotest.failf "hammer failures: %s" (String.concat "; " msgs));
  Alcotest.(check int) "all writes landed" (5 + writes)
    (count_patients (Catalog.doc entry));
  Alcotest.(check bool) "version advanced once per write" true
    (Catalog.version entry >= v0 + writes)

let () =
  Alcotest.run "update"
    [
      ( "language",
        [
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "grants",
        [
          Alcotest.test_case "default deny" `Quick test_default_deny;
          Alcotest.test_case "per-op" `Quick test_grants_are_per_op;
          Alcotest.test_case "per-edge" `Quick test_ungranted_edge_denied;
          Alcotest.test_case "stored view" `Quick test_stored_view_group_denied;
        ] );
      ( "apply",
        [
          Alcotest.test_case "delete" `Quick test_accepted_delete;
          Alcotest.test_case "insert+replace" `Quick
            test_accepted_insert_and_replace;
          Alcotest.test_case "leaf replace" `Quick
            test_replace_medication_needs_regular_grant;
          Alcotest.test_case "dtd violation" `Quick test_dtd_violation_rejected;
          Alcotest.test_case "empty target" `Quick test_empty_target_rejected;
        ] );
      ( "policy",
        [
          Alcotest.test_case "hidden subtree" `Quick
            test_nurse_subtree_with_hidden_nodes;
          Alcotest.test_case "unreadable content" `Quick
            test_nurse_cannot_write_unreadable_content;
          Alcotest.test_case "visible leaf" `Quick
            test_nurse_can_update_visible_leaf;
          Alcotest.test_case "out of view" `Quick
            test_nurse_other_ward_out_of_view;
          Alcotest.test_case "qualifier flip" `Quick
            test_qualifier_flip_denied;
          Alcotest.test_case "sanitized denial" `Quick
            test_denial_text_is_sanitized;
          Alcotest.test_case "view-scoped digest" `Quick
            test_receipt_digest_is_view_scoped;
          Alcotest.test_case "text content" `Quick
            test_text_content_typed_error;
        ] );
      ( "caches",
        [
          Alcotest.test_case "per-document invalidation" `Quick
            test_invalidation_is_per_document;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "hammer" `Quick test_snapshot_isolation_hammer;
        ] );
    ]
