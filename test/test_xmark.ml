(* The XMark-flavoured recursive workload: derive over a general
   (non-normal-form) recursive DTD, recursive-view rewriting on
   realistic documents, and end-to-end equivalence. *)

module View = Secview.View
module Rewrite = Secview.Rewrite
module Materialize = Secview.Materialize
module Access = Secview.Access

(* deprecated-free shim over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let parse = Sxpath.Parse.of_string

let test_dtd_shape () =
  let dtd = Workload.Xmark.dtd in
  Alcotest.(check bool) "recursive" true (Sdtd.Dtd.is_recursive dtd);
  Alcotest.(check bool) "not in the paper's normal form" false
    (Sdtd.Dtd.in_normal_form dtd);
  Alcotest.(check bool) "consistent" true (Sdtd.Dtd.is_consistent dtd);
  (* description reaches the parlist ↔ listitem cycle but is not on
     it *)
  Alcotest.(check (list string)) "recursive types"
    [ "listitem"; "parlist" ]
    (List.sort compare
       (List.filter
          (fun t -> t <> "site")
          (Sdtd.Dtd.recursive_types dtd)))

let test_documents_conform () =
  List.iter
    (fun seed ->
      let doc = Workload.Xmark.document ~seed ~scale:6 () in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d" seed)
        []
        (List.map
           (fun v -> v.Sdtd.Validate.message)
           (Sdtd.Validate.check Workload.Xmark.dtd doc)))
    [ 1; 2; 3 ]

let test_view_hides_payment_data () =
  let view = Workload.Xmark.view () in
  let dtd = View.dtd view in
  List.iter
    (fun hidden ->
      Alcotest.(check bool) (hidden ^ " hidden") false (Sdtd.Dtd.mem dtd hidden))
    [ "creditcard"; "profile"; "income"; "education"; "payment";
      "closed-auctions"; "closed-auction" ];
  (* prices of closed auctions survive, reached through dummies *)
  Alcotest.(check bool) "price still reachable" true
    (List.exists
       (fun a -> List.mem "price" (Sdtd.Dtd.children_of dtd a))
       (Sdtd.Dtd.reachable dtd));
  Alcotest.(check bool) "view is recursive" true (Sdtd.Dtd.is_recursive dtd)

let test_view_sound_complete () =
  let spec = Workload.Xmark.spec in
  let view = Workload.Xmark.view () in
  let doc = Workload.Xmark.document ~seed:5 ~scale:4 () in
  let vt = Materialize.materialize ~spec ~view doc in
  let accessible = Access.accessible_set spec doc in
  let non_dummy =
    List.filter_map
      (fun (l, id) -> if View.is_dummy view l then None else Some id)
      (Materialize.element_sources vt)
    |> List.sort_uniq compare
  in
  let expected =
    List.filter_map
      (fun (n : Sxml.Tree.t) ->
        if Sxml.Tree.is_element n && Access.IntSet.mem n.id accessible then
          Some n.id
        else None)
      (Sxml.Tree.descendants_or_self doc)
  in
  Alcotest.(check (list int)) "sound and complete" expected non_dummy;
  Alcotest.(check bool) "conforms to the view DTD" true
    (Sdtd.Validate.conforms (View.dtd view)
       (Materialize.to_tree vt))

let check_equivalent ~spec ~view q doc =
  let height = Workload.Xmark.element_height doc in
  let pt = Rewrite.rewrite_with_height view ~height q in
  let direct =
    List.map (fun (n : Sxml.Tree.t) -> n.id) (eval pt doc)
  in
  let vt = Materialize.materialize ~spec ~view doc in
  let tree, source_of = Materialize.to_tree_with_sources vt in
  let via_view =
    List.filter_map
      (fun (n : Sxml.Tree.t) -> source_of n.id)
      (eval q tree)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int))
    ("equivalent: " ^ Sxpath.Print.to_string q)
    via_view direct

let test_query_equivalence () =
  let spec = Workload.Xmark.spec in
  let view = Workload.Xmark.view () in
  let doc = Workload.Xmark.document ~seed:7 ~scale:4 () in
  List.iter
    (fun (_, q) -> check_equivalent ~spec ~view q doc)
    Workload.Xmark.queries

let test_recursive_descent_bounded_by_height () =
  let view = Workload.Xmark.view () in
  let doc = Workload.Xmark.document ~seed:9 ~scale:3 () in
  let height = Workload.Xmark.element_height doc in
  let q = parse "//listitem//text" in
  let pt = Rewrite.rewrite_with_height view ~height q in
  (* the rewritten query must find exactly the texts under listitems *)
  let expected =
    List.filter
      (fun (n : Sxml.Tree.t) ->
        Sxml.Tree.tag n = Some "text")
      (eval (parse "//listitem//text") doc)
  in
  Alcotest.(check int) "all nested texts found"
    (List.length expected)
    (List.length (eval pt doc))

let test_hidden_data_unreachable () =
  let view = Workload.Xmark.view () in
  let doc = Workload.Xmark.document ~seed:3 ~scale:4 () in
  let height = Workload.Xmark.element_height doc in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (q ^ " rewrites to nothing")
        0
        (List.length
           (eval
              (Rewrite.rewrite_with_height view ~height (parse q))
              doc)))
    [ "//creditcard"; "//income"; "//payment"; "//closed-auction/buyer" ]

let test_conditional_address_rule () =
  let spec = Workload.Xmark.spec in
  let view = Workload.Xmark.view () in
  let doc = Workload.Xmark.document ~seed:13 ~scale:8 () in
  let height = Workload.Xmark.element_height doc in
  let pt = Rewrite.rewrite_with_height view ~height (parse "//address") in
  let results = eval pt doc in
  Alcotest.(check bool) "some US addresses in a big enough document" true
    (results <> []);
  List.iter
    (fun (n : Sxml.Tree.t) ->
      Alcotest.(check bool) "only US addresses" true
        (List.exists
           (fun c -> Sxml.Tree.string_value c = "US")
           (eval (parse "country") n)))
    results;
  ignore spec

let () =
  Alcotest.run "xmark"
    [
      ( "fixture",
        [
          Alcotest.test_case "DTD shape" `Quick test_dtd_shape;
          Alcotest.test_case "documents conform" `Quick
            test_documents_conform;
        ] );
      ( "view",
        [
          Alcotest.test_case "hides payment data" `Quick
            test_view_hides_payment_data;
          Alcotest.test_case "sound and complete" `Quick
            test_view_sound_complete;
        ] );
      ( "queries",
        [
          Alcotest.test_case "equivalence X1-X5" `Quick
            test_query_equivalence;
          Alcotest.test_case "recursive descent" `Quick
            test_recursive_descent_bounded_by_height;
          Alcotest.test_case "hidden data unreachable" `Quick
            test_hidden_data_unreachable;
          Alcotest.test_case "conditional address rule" `Quick
            test_conditional_address_rule;
        ] );
    ]
