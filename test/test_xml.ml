(* XML trees: construction, preorder identifiers, queries, and the
   parser/serializer pair. *)

open Sxml

let sample () =
  Tree.(
    of_spec
      (elem "r"
         [
           elem "a" ~attrs:[ ("k", "v1") ] [ text "one" ];
           elem "b" [ elem "c" []; text "two" ];
         ]))

let test_preorder_ids () =
  let doc = sample () in
  let ids = List.map (fun n -> n.Tree.id) (Tree.descendants_or_self doc) in
  Alcotest.(check (list int)) "preorder, contiguous" [ 0; 1; 2; 3; 4; 5 ] ids

let test_tags_and_text () =
  let doc = sample () in
  Alcotest.(check (option string)) "root tag" (Some "r") (Tree.tag doc);
  let texts =
    List.filter_map Tree.text_value (Tree.descendants_or_self doc)
  in
  Alcotest.(check (list string)) "texts in document order" [ "one"; "two" ]
    texts

let test_string_value () =
  let doc = sample () in
  Alcotest.(check string) "string value concatenates" "onetwo"
    (Tree.string_value doc)

let test_attr () =
  let doc = sample () in
  let a = List.hd (Tree.find_all (fun n -> Tree.tag n = Some "a") doc) in
  Alcotest.(check (option string)) "attr present" (Some "v1") (Tree.attr a "k");
  Alcotest.(check (option string)) "attr absent" None (Tree.attr a "zz")

let test_size_depth_counts () =
  let doc = sample () in
  Alcotest.(check int) "size" 6 (Tree.size doc);
  Alcotest.(check int) "elements" 4 (Tree.count_elements doc);
  Alcotest.(check int) "depth" 3 (Tree.depth doc)

let test_sort_dedup () =
  let doc = sample () in
  let all = Tree.descendants_or_self doc in
  let shuffled = List.rev all @ all in
  let sorted = Tree.sort_dedup shuffled in
  Alcotest.(check (list int)) "sorted and deduped" [ 0; 1; 2; 3; 4; 5 ]
    (List.map (fun n -> n.Tree.id) sorted)

let test_with_attr () =
  let doc = sample () in
  let doc' = Tree.with_attr doc "x" "1" in
  Alcotest.(check (option string)) "attr added" (Some "1")
    (Tree.attr doc' "x");
  Alcotest.(check int) "id preserved" doc.Tree.id doc'.Tree.id

let test_map_attrs () =
  let doc = sample () in
  let doc' = Tree.map_attrs (fun n -> [ ("id", string_of_int n.Tree.id) ]) doc in
  let b = List.hd (Tree.find_all (fun n -> Tree.tag n = Some "b") doc') in
  Alcotest.(check (option string)) "id stamped" (Some "3") (Tree.attr b "id");
  Alcotest.(check int) "text untouched" 6 (Tree.size doc')

let test_equal_structure () =
  Alcotest.(check bool) "equal to itself rebuilt" true
    (Tree.equal_structure (sample ()) (sample ()));
  let other = Tree.(of_spec (elem "r" [])) in
  Alcotest.(check bool) "different" false
    (Tree.equal_structure (sample ()) other)

let roundtrip ?indent doc =
  Parse.of_string (Print.to_string ?indent doc)

let test_print_parse_roundtrip () =
  let doc = sample () in
  Alcotest.(check bool) "compact roundtrip" true
    (Tree.equal_structure doc (roundtrip doc));
  Alcotest.(check bool) "indented roundtrip" true
    (Tree.equal_structure doc (roundtrip ~indent:true doc))

let test_escaping () =
  let doc =
    Tree.(
      of_spec
        (elem "r" ~attrs:[ ("q", "a\"b<c&d") ] [ text "x<y & z>w" ]))
  in
  let doc' = roundtrip doc in
  Alcotest.(check bool) "special characters survive" true
    (Tree.equal_structure doc doc')

let test_parse_entities () =
  let doc = Parse.of_string "<r>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</r>" in
  Alcotest.(check string) "entities decoded" "<&>\"'AB"
    (Tree.string_value doc)

let test_parse_whitespace_modes () =
  let input = "<r>\n  <a/>\n  <b/>\n</r>" in
  let stripped = Parse.of_string input in
  Alcotest.(check int) "whitespace dropped" 3 (Tree.size stripped);
  let kept = Parse.of_string ~keep_whitespace:true input in
  Alcotest.(check bool) "whitespace kept" true (Tree.size kept > 3)

let test_parse_prolog_and_comments () =
  let doc =
    Parse.of_string
      "<?xml version=\"1.0\"?><!DOCTYPE r><!-- hi --><r><!-- in -->\
       <a/></r><!-- after -->"
  in
  Alcotest.(check int) "prolog and comments skipped" 2 (Tree.size doc)

let test_parse_self_closing_and_attrs () =
  let doc = Parse.of_string "<r a=\"1\" b='2'/>" in
  Alcotest.(check (option string)) "double quoted" (Some "1")
    (Tree.attr doc "a");
  Alcotest.(check (option string)) "single quoted" (Some "2")
    (Tree.attr doc "b")

let expect_error input =
  match Parse.of_string input with
  | exception Parse.Error _ -> ()
  | _ -> Alcotest.failf "expected parse error on %s" input

let test_parse_errors () =
  expect_error "<r>";
  expect_error "<r></s>";
  expect_error "<r><a></r></a>";
  expect_error "";
  expect_error "<r a=\"1\" a=\"2\"/>";
  expect_error "<r>&unknown;</r>";
  expect_error "<r/><r/>";
  expect_error "plain text"

let test_error_position () =
  match Parse.of_string "<r>\n<a></b>\n</r>" with
  | exception Parse.Error e ->
    Alcotest.(check int) "error on line 2" 2 e.Parse.line
  | _ -> Alcotest.fail "expected error"

(* Property: print/parse roundtrip on random trees. *)
let gen_tree =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "d" ] in
  let txt = oneofl [ "x"; "hello"; "<&>"; "a b" ] in
  let node =
    sized @@ fix (fun self n ->
        if n <= 1 then
          oneof
            [ map Sxml.Tree.text txt; map (fun t -> Sxml.Tree.elem t []) tag ]
        else
          map2
            (fun t kids -> Sxml.Tree.elem t kids)
            tag
            (list_size (int_bound 4) (self (n / 3))))
  in
  (* Wrap in a root element; merge adjacent text nodes would be needed
     for exact roundtrip, so force element-only children at the top and
     avoid adjacent-text ambiguity by interleaving elements. *)
  map (fun kids -> Sxml.Tree.of_spec (Sxml.Tree.elem "root" kids))
    (list_size (int_bound 4) node)

let no_adjacent_texts doc =
  let rec ok (n : Sxml.Tree.t) =
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        (not (Sxml.Tree.is_text a && Sxml.Tree.is_text b)) && pairs rest
      | _ -> true
    in
    pairs (Sxml.Tree.children n)
    && List.for_all ok (Sxml.Tree.children n)
  in
  ok doc

let all_texts_solid doc =
  (* whitespace-only texts are dropped by the parser; skip those. *)
  List.for_all
    (fun n ->
      match Sxml.Tree.text_value n with
      | Some s -> String.trim s <> ""
      | None -> true)
    (Sxml.Tree.descendants_or_self doc)

let prop_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip" ~count:200 gen_tree
    (fun doc ->
      QCheck2.assume (no_adjacent_texts doc);
      QCheck2.assume (all_texts_solid doc);
      Sxml.Tree.equal_structure doc (roundtrip doc))

let prop_ids_preorder =
  QCheck2.Test.make ~name:"identifiers are dense preorder" ~count:200 gen_tree
    (fun doc ->
      let ids =
        List.map (fun n -> n.Sxml.Tree.id) (Sxml.Tree.descendants_or_self doc)
      in
      ids = List.init (List.length ids) Fun.id)

let () =
  Alcotest.run "xml"
    [
      ( "tree",
        [
          Alcotest.test_case "preorder ids" `Quick test_preorder_ids;
          Alcotest.test_case "tags and text" `Quick test_tags_and_text;
          Alcotest.test_case "string_value" `Quick test_string_value;
          Alcotest.test_case "attributes" `Quick test_attr;
          Alcotest.test_case "size/depth/count" `Quick test_size_depth_counts;
          Alcotest.test_case "sort_dedup" `Quick test_sort_dedup;
          Alcotest.test_case "with_attr" `Quick test_with_attr;
          Alcotest.test_case "map_attrs" `Quick test_map_attrs;
          Alcotest.test_case "equal_structure" `Quick test_equal_structure;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "whitespace modes" `Quick
            test_parse_whitespace_modes;
          Alcotest.test_case "prolog/comments" `Quick
            test_parse_prolog_and_comments;
          Alcotest.test_case "attributes" `Quick
            test_parse_self_closing_and_attrs;
          Alcotest.test_case "malformed inputs" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_position;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_roundtrip; prop_ids_preorder ] );
    ]
