(* The XPath fragment: parser, printer, smart constructors, evaluator
   semantics, and the algebraic normalizer. *)

module A = Sxpath.Ast

(* deprecated-free shims over the Ctx evaluation API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let eval_doc p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~at:`Document ~root:doc ()) p

let eval_nodes p nodes =
  match nodes with
  | [] -> []
  | n :: _ -> Sxpath.Eval.run_nodes (Sxpath.Eval.Ctx.make ~root:n ()) p nodes

let holds q doc = Sxpath.Eval.check (Sxpath.Eval.Ctx.make ~root:doc ()) q doc

let path_t = Alcotest.testable Sxpath.Print.pp A.equal_path

let parse = Sxpath.Parse.of_string

let test_parse_steps () =
  Alcotest.check path_t "label" (A.Label "a") (parse "a");
  Alcotest.check path_t "wildcard" A.Wildcard (parse "*");
  Alcotest.check path_t "eps" A.Eps (parse ".");
  Alcotest.check path_t "attribute" (A.Attribute "x") (parse "@x");
  Alcotest.check path_t "empty" A.Empty (parse "#empty");
  Alcotest.check path_t "slash"
    (A.Slash (A.Label "a", A.Label "b"))
    (parse "a/b");
  Alcotest.check path_t "leading slash is cosmetic"
    (A.Slash (A.Label "a", A.Label "b"))
    (parse "/a/b");
  Alcotest.check path_t "descendant"
    (A.Dslash (A.Label "a"))
    (parse "//a");
  Alcotest.check path_t "infix descendant"
    (A.Slash (A.Label "a", A.Dslash (A.Label "b")))
    (parse "a//b")

let test_parse_union_precedence () =
  Alcotest.check path_t "union binds loosest"
    (A.Union (A.Slash (A.Label "a", A.Label "b"), A.Label "c"))
    (parse "a/b | c");
  Alcotest.check path_t "parens override"
    (A.Slash (A.Label "a", A.Union (A.Label "b", A.Label "c")))
    (parse "a/(b | c)")

let test_parse_qualifiers () =
  Alcotest.check path_t "existence"
    (A.Qualify (A.Label "a", A.Exists (A.Label "b")))
    (parse "a[b]");
  Alcotest.check path_t "equality with string"
    (A.Qualify (A.Label "a", A.Eq (A.Label "b", A.Const "x")))
    (parse "a[b = \"x\"]");
  Alcotest.check path_t "equality with number"
    (A.Qualify (A.Label "a", A.Eq (A.Label "b", A.Const "6")))
    (parse "a[b = 6]");
  Alcotest.check path_t "equality with variable"
    (A.Qualify (A.Label "a", A.Eq (A.Label "b", A.Var "w")))
    (parse "a[b = $w]");
  Alcotest.check path_t "boolean structure"
    (A.Qualify
       ( A.Label "a",
         A.Or
           ( A.And (A.Exists (A.Label "b"), A.Exists (A.Label "c")),
             A.Not (A.Exists (A.Label "d")) ) ))
    (parse "a[b and c or not(d)]");
  Alcotest.check path_t "literals"
    (A.Qualify (A.Label "a", A.And (A.True, A.False)))
    (parse "a[true() and false()]");
  Alcotest.check path_t "nested qualifiers"
    (A.Qualify
       (A.Label "a", A.Exists (A.Qualify (A.Label "b", A.Exists (A.Label "c")))))
    (parse "a[b[c]]");
  Alcotest.check path_t "descendant inside qualifier"
    (A.Qualify (A.Label "a", A.Exists (A.Dslash (A.Label "b"))))
    (parse "a[//b]");
  Alcotest.check path_t "attribute equality"
    (A.Qualify (A.Label "a", A.Eq (A.Attribute "acc", A.Const "1")))
    (parse "a[@acc = \"1\"]");
  Alcotest.check path_t "stacked qualifiers"
    (A.Qualify
       (A.Qualify (A.Label "a", A.Exists (A.Label "b")), A.Exists (A.Label "c")))
    (parse "a[b][c]")

let test_parse_union_in_qualifier () =
  Alcotest.check path_t "parenthesized union path in qualifier"
    (A.Qualify (A.Label "a", A.Exists (A.Union (A.Label "b", A.Label "c"))))
    (parse "a[(b | c)]");
  Alcotest.check path_t "union path continuing with a step"
    (A.Qualify
       ( A.Label "a",
         A.Exists (A.Slash (A.Union (A.Label "b", A.Label "c"), A.Label "d")) ))
    (parse "a[(b | c)/d]")

let expect_error input =
  match parse input with
  | exception Sxpath.Parse.Error _ -> ()
  | p ->
    Alcotest.failf "expected error on %s, got %s" input
      (Sxpath.Print.to_string p)

let test_parse_errors () =
  expect_error "";
  expect_error "a[";
  expect_error "a]";
  expect_error "a/";
  expect_error "a |";
  expect_error "a[b =]";
  expect_error "(a";
  expect_error "a b"

let test_print_examples () =
  let s p = Sxpath.Print.to_string p in
  Alcotest.(check string) "slash chain" "a/b/c"
    (s (A.Slash (A.Slash (A.Label "a", A.Label "b"), A.Label "c")));
  Alcotest.(check string) "contracted //" "a//b"
    (s (A.Slash (A.Label "a", A.Dslash (A.Label "b"))));
  Alcotest.(check string) "union parenthesized under slash" "(a | b)/c"
    (s (A.Slash (A.Union (A.Label "a", A.Label "b"), A.Label "c")));
  Alcotest.(check string) "qualifier" "a[b = \"x\" and c]"
    (s
       (A.Qualify
          ( A.Label "a",
            A.And (A.Eq (A.Label "b", A.Const "x"), A.Exists (A.Label "c")) )))

let test_smart_constructors () =
  Alcotest.check path_t "slash with empty" A.Empty
    (A.slash (A.Label "a") A.Empty);
  Alcotest.check path_t "slash with eps" (A.Label "a")
    (A.slash A.Eps (A.Label "a"));
  Alcotest.check path_t "union with empty" (A.Label "a")
    (A.union A.Empty (A.Label "a"));
  Alcotest.check path_t "union dedups" (A.Label "a")
    (A.union (A.Label "a") (A.Label "a"));
  Alcotest.check path_t "qualify true" (A.Label "a")
    (A.qualify (A.Label "a") A.True);
  Alcotest.check path_t "qualify false" A.Empty
    (A.qualify (A.Label "a") A.False);
  Alcotest.(check bool) "qnot collapses" true
    (A.equal_qual (A.Exists (A.Label "a"))
       (A.qnot (A.qnot (A.Exists (A.Label "a")))));
  Alcotest.(check bool) "exists of empty is false" true
    (A.equal_qual A.False (A.exists A.Empty))

let test_subpaths_ascending () =
  let p = parse "a/b[c]" in
  let subs = A.subpaths p in
  let idx q =
    let rec go i = function
      | [] -> Alcotest.failf "missing subquery %s" (Sxpath.Print.to_string q)
      | x :: _ when A.equal_path x q -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 subs
  in
  Alcotest.(check bool) "children precede parents" true
    (idx (A.Label "a") < idx p
    && idx (A.Label "c") < idx (A.Qualify (A.Label "b", A.Exists (A.Label "c")))
    )

let test_size () =
  (* Slash(a, Qualify(b, Exists c)) = 1+1+1+1+(1+1) *)
  Alcotest.(check int) "size of a/b[c]" 6 (A.size (parse "a/b[c]"))

let test_variables_substitute () =
  let p = parse "a[b = $w and c = $v]" in
  Alcotest.(check (list string)) "variables" [ "w"; "v" ] (A.variables p);
  let p' = A.substitute (fun n -> if n = "w" then Some "6" else None) p in
  Alcotest.check path_t "w bound" (parse "a[b = \"6\" and c = $v]") p'

(* --- evaluator ------------------------------------------------------ *)

let doc () =
  Sxml.Tree.(
    of_spec
      (elem "r"
         [
           elem "a"
             [
               elem "b" [ text "one" ];
               elem "c" ~attrs:[ ("acc", "1") ] [ elem "b" [ text "two" ] ];
             ];
           elem "a" [ elem "b" [ text "three" ] ];
           elem "d" [ text "leaf" ];
         ]))

let strings p d =
  List.map Sxml.Tree.string_value (eval p d)

let test_eval_child_steps () =
  let d = doc () in
  Alcotest.(check (list string)) "a/b" [ "one"; "three" ]
    (strings (parse "a/b") d);
  Alcotest.(check (list string)) "wildcard selects element children"
    [ "onetwo"; "three"; "leaf" ]
    (strings (parse "*") d);
  Alcotest.(check (list string)) "*/b" [ "one"; "three" ]
    (strings (parse "*/b") d)

let test_eval_descendant () =
  let d = doc () in
  Alcotest.(check (list string)) "//b finds all three"
    [ "one"; "two"; "three" ]
    (strings (parse "//b") d);
  Alcotest.(check (list string)) "a//b includes nested"
    [ "one"; "two"; "three" ]
    (strings (parse "a//b") d)

let test_eval_dedup_and_order () =
  let d = doc () in
  let results = eval (parse "//b | a/b | //c/b") d in
  let ids = List.map (fun n -> n.Sxml.Tree.id) results in
  Alcotest.(check (list int)) "sorted, no duplicates"
    (List.sort_uniq compare ids) ids;
  Alcotest.(check int) "three distinct" 3 (List.length results)

let test_eval_qualifiers () =
  let d = doc () in
  Alcotest.(check (list string)) "a[c]/b keeps first a only" [ "one" ]
    (strings (parse "a[c]/b") d);
  Alcotest.(check (list string)) "equality" [ "one" ]
    (strings (parse "a[b = \"one\"]/b") d);
  Alcotest.(check (list string)) "negation" [ "three" ]
    (strings (parse "a[not(c)]/b") d);
  Alcotest.(check (list string)) "disjunction"
    [ "one"; "three" ]
    (strings (parse "a[c or b = \"three\"]/b") d);
  Alcotest.(check int) "attribute qualifier" 1
    (List.length (eval (parse "//c[@acc = \"1\"]") d));
  Alcotest.(check int) "attribute existence" 1
    (List.length (eval (parse "//c[@acc]") d));
  Alcotest.(check int) "attribute mismatch" 0
    (List.length (eval (parse "//c[@acc = \"0\"]") d))

let test_eval_eps_and_empty () =
  let d = doc () in
  Alcotest.(check int) "eps is the context node" 1
    (List.length (eval A.Eps d));
  Alcotest.(check int) "empty returns nothing" 0
    (List.length (eval A.Empty d));
  Alcotest.(check int) "// alone returns all elements (text is str data)"
    (Sxml.Tree.count_elements d)
    (List.length (eval (parse "//.") d))

let test_eval_doc_vs_node () =
  let d = doc () in
  (* At the root element, "r" looks for r children: none.  At the
     document node, "r" is the root itself. *)
  Alcotest.(check int) "r at root element" 0
    (List.length (eval (parse "r") d));
  Alcotest.(check int) "r at document node" 1
    (List.length (eval_doc (parse "r") d))

let test_eval_env () =
  let d = doc () in
  let env n = if n = "x" then Some "one" else None in
  Alcotest.(check (list string)) "variable bound" [ "one" ]
    (List.map Sxml.Tree.string_value
       (eval ~env (parse "a[b = $x]/b") d));
  Alcotest.(check bool) "unbound variable raises" true
    (match eval (parse "a[b = $x]") d with
    | exception Sxpath.Eval.Unbound_variable "x" -> true
    | _ -> false)

let test_eval_equality_on_elements () =
  (* [p = c] via string value of elements, like the paper's text-node
     formulation. *)
  let d = doc () in
  Alcotest.(check int) "d = leaf" 1
    (List.length (eval (parse ".[d = \"leaf\"]") d))

let test_holds () =
  let d = doc () in
  Alcotest.(check bool) "holds" true
    (holds (Sxpath.Parse.qual_of_string "a/b") d);
  Alcotest.(check bool) "fails" false
    (holds (Sxpath.Parse.qual_of_string "zz") d)

(* --- simplifier ----------------------------------------------------- *)

let test_simplify () =
  let s = Sxpath.Simplify.path in
  Alcotest.check path_t "empty propagates" A.Empty
    (s (A.Slash (A.Label "a", A.Slash (A.Empty, A.Label "b"))));
  Alcotest.check path_t "false qualifier kills"
    A.Empty
    (s (A.Qualify (A.Label "a", A.Exists A.Empty)));
  Alcotest.check path_t "union of identical branches"
    (A.Label "a")
    (s (A.Union (A.Label "a", A.Union (A.Empty, A.Label "a"))));
  Alcotest.check path_t "nested eps collapses"
    (A.Label "a")
    (s (A.Slash (A.Eps, A.Slash (A.Label "a", A.Eps))))

(* Property: simplify preserves evaluation. *)
let gen_path =
  let open QCheck2.Gen in
  let label = oneofl [ "r"; "a"; "b"; "c"; "d" ] in
  sized @@ fix (fun self n ->
      if n <= 1 then
        oneof
          [ map (fun l -> A.Label l) label; return A.Eps; return A.Wildcard;
            return A.Empty ]
      else
        oneof
          [
            map (fun l -> A.Label l) label;
            map2 (fun a b -> A.Slash (a, b)) (self (n / 2)) (self (n / 2));
            map (fun a -> A.Dslash a) (self (n - 1));
            map2 (fun a b -> A.Union (a, b)) (self (n / 2)) (self (n / 2));
            map2
              (fun a q -> A.Qualify (a, q))
              (self (n / 2))
              (oneof
                 [
                   map (fun p -> A.Exists p) (self (n / 2));
                   map (fun p -> A.Not (A.Exists p)) (self (n / 2));
                   map (fun p -> A.Eq (p, A.Const "one")) (self (n / 2));
                 ]);
          ])

let ids p d = List.map (fun n -> n.Sxml.Tree.id) (eval p d)

let prop_simplify_preserves =
  QCheck2.Test.make ~name:"simplify preserves evaluation" ~count:300 gen_path
    (fun p ->
      let d = doc () in
      ids p d = ids (Sxpath.Simplify.path p) d)

(* The parser associates '/' and '|' to the left; canonicalize both
   sides of the roundtrip so associativity does not cause spurious
   mismatches. *)
let rec canon (p : A.path) : A.path =
  let rec slashes = function
    | A.Slash (a, b) -> slashes a @ slashes b
    | p -> [ canon p ]
  in
  match p with
  | A.Empty | A.Eps | A.Label _ | A.Wildcard | A.Attribute _ -> p
  | A.Slash _ -> (
    match slashes p with
    | [] -> A.Eps
    | first :: rest ->
      List.fold_left (fun acc q -> A.Slash (acc, q)) first rest)
  | A.Dslash a -> A.Dslash (canon a)
  | A.Union _ -> (
    match List.map canon (A.union_branches p) with
    | [] -> A.Empty
    | first :: rest ->
      List.fold_left (fun acc q -> A.Union (acc, q)) first rest)
  | A.Qualify (a, q) -> A.Qualify (canon a, canon_qual q)

and canon_qual = function
  | (A.True | A.False) as q -> q
  | A.Exists p -> A.Exists (canon p)
  | A.Eq (p, v) -> A.Eq (canon p, v)
  | A.And (a, b) -> A.And (canon_qual a, canon_qual b)
  | A.Or (a, b) -> A.Or (canon_qual a, canon_qual b)
  | A.Not q -> A.Not (canon_qual q)

let prop_print_parse =
  QCheck2.Test.make ~name:"print/parse roundtrip" ~print:Sxpath.Print.to_string ~count:300 gen_path
    (fun p ->
      match Sxpath.Parse.of_string (Sxpath.Print.to_string p) with
      | p' -> A.equal_path (canon p) (canon p')
      | exception Sxpath.Parse.Error _ -> false)

let prop_eval_sorted_dedup =
  QCheck2.Test.make ~name:"evaluation is sorted and duplicate-free"
    ~count:300 gen_path (fun p ->
      let out = ids p (doc ()) in
      out = List.sort_uniq compare out)

(* ---- tricky printing shapes (regression: buried descendant axes) ---- *)

let test_print_parse_tricky_shapes () =
  let cases =
    [
      A.Slash (A.Label "a", A.Slash (A.Dslash (A.Label "b"), A.Label "c"));
      A.Dslash (A.Dslash (A.Label "a"));
      A.Dslash (A.Slash (A.Label "a", A.Label "b"));
      A.Slash (A.Label "a", A.Dslash (A.Slash (A.Label "b", A.Label "c")));
      A.Qualify (A.Dslash (A.Label "a"), A.Exists (A.Dslash (A.Label "b")));
      A.Slash
        ( A.Union (A.Label "a", A.Dslash (A.Label "b")),
          A.Union (A.Label "c", A.Eps) );
      A.Qualify (A.Eps, A.Not (A.Eq (A.Dslash (A.Label "a"), A.Const "x")));
    ]
  in
  List.iter
    (fun p ->
      let s = Sxpath.Print.to_string p in
      match Sxpath.Parse.of_string s with
      | p' ->
        Alcotest.(check bool)
          (Printf.sprintf "%s survives" s)
          true
          (Sxpath.Simplify.equivalent_syntax p p')
      | exception Sxpath.Parse.Error e ->
        Alcotest.failf "printed %s but cannot reparse: %s" s
          (Sxpath.Parse.error_to_string e))
    cases

let test_eval_nodes_set_at_a_time () =
  let d = doc () in
  let contexts = eval (parse "a") d in
  Alcotest.(check int) "two a contexts" 2 (List.length contexts);
  let all_bs = eval_nodes (parse "b") contexts in
  Alcotest.(check (list string)) "direct b children of both"
    [ "one"; "three" ]
    (List.map Sxml.Tree.string_value all_bs)

let test_eval_doc_descendants () =
  let d = doc () in
  Alcotest.(check int) "//. from the document node counts all elements"
    (Sxml.Tree.count_elements d)
    (List.length (eval_doc (parse "//.") d))

let canon_path_t =
  Alcotest.testable Sxpath.Print.pp Sxpath.Simplify.equivalent_syntax

let test_factor_terminates_on_assoc_duplicates () =
  (* regression: ε-tails from duplicate branches used to loop *)
  let p =
    A.Union
      ( A.Slash (A.Label "a", A.Slash (A.Label "b", A.Label "c")),
        A.Slash (A.Slash (A.Label "a", A.Label "b"), A.Label "c") )
  in
  Alcotest.check canon_path_t "collapses to one branch"
    (parse "a/b/c")
    (Sxpath.Simplify.factor p)

let test_factor_groups_prefixes () =
  Alcotest.check canon_path_t "left factoring"
    (parse "a/(b | c)")
    (Sxpath.Simplify.factor (parse "a/b | a/c"));
  Alcotest.check canon_path_t "bare head joins its extensions"
    (parse "a/(. | b)")
    (Sxpath.Simplify.factor (parse "a | a/b"));
  Alcotest.check canon_path_t "distinct heads untouched"
    (parse "a/b | c/d")
    (Sxpath.Simplify.factor (parse "a/b | c/d"))

let () =
  Alcotest.run "xpath"
    [
      ( "parser",
        [
          Alcotest.test_case "steps" `Quick test_parse_steps;
          Alcotest.test_case "union precedence" `Quick
            test_parse_union_precedence;
          Alcotest.test_case "qualifiers" `Quick test_parse_qualifiers;
          Alcotest.test_case "unions in qualifiers" `Quick
            test_parse_union_in_qualifier;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "printer",
        [
          Alcotest.test_case "examples" `Quick test_print_examples;
        ] );
      ( "ast",
        [
          Alcotest.test_case "smart constructors" `Quick
            test_smart_constructors;
          Alcotest.test_case "subpaths ascending" `Quick
            test_subpaths_ascending;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "variables/substitute" `Quick
            test_variables_substitute;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "child steps" `Quick test_eval_child_steps;
          Alcotest.test_case "descendant" `Quick test_eval_descendant;
          Alcotest.test_case "dedup and order" `Quick
            test_eval_dedup_and_order;
          Alcotest.test_case "qualifiers" `Quick test_eval_qualifiers;
          Alcotest.test_case "eps/empty" `Quick test_eval_eps_and_empty;
          Alcotest.test_case "doc vs node context" `Quick
            test_eval_doc_vs_node;
          Alcotest.test_case "environments" `Quick test_eval_env;
          Alcotest.test_case "equality on elements" `Quick
            test_eval_equality_on_elements;
          Alcotest.test_case "holds" `Quick test_holds;
        ] );
      ( "simplifier",
        [
          Alcotest.test_case "laws" `Quick test_simplify;
          Alcotest.test_case "factor terminates on assoc duplicates" `Quick
            test_factor_terminates_on_assoc_duplicates;
          Alcotest.test_case "factor groups prefixes" `Quick
            test_factor_groups_prefixes;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "tricky printing shapes" `Quick
            test_print_parse_tricky_shapes;
          Alcotest.test_case "eval_nodes" `Quick test_eval_nodes_set_at_a_time;
          Alcotest.test_case "eval_doc descendants" `Quick
            test_eval_doc_descendants;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_simplify_preserves; prop_print_parse; prop_eval_sorted_dedup ]
      );
    ]
