(* bench_diff: compare two bench / replay reports and fail CI on a
   latency regression.

   Both inputs are JSON files (BENCH_*.json from `secview bench`, or
   the report `secview replay --out` writes).  The tool flattens each
   to its percentile leaves — numeric fields named `median`, `p50*`
   or `p95*`, anywhere in the structure — and compares leaves present
   in both by path.  A leaf regresses when the candidate is both
   `--threshold` percent above the baseline AND more than
   `--floor` milliseconds above it (the absolute floor keeps
   microsecond-scale noise from failing builds).

   Exit status: 0 when no leaf regresses, 1 on any regression, 2 on
   usage or parse errors. *)

module J = Sobs.Json

let interesting key =
  let has_prefix p =
    String.length key >= String.length p && String.sub key 0 (String.length p) = p
  in
  key = "median" || has_prefix "p50" || has_prefix "p95"

(* Label a list element by its identifying fields when it has any
   (bench cells carry "groups"/"label", replay cells "group"/"query"),
   so paths stay stable when a run adds or reorders cells. *)
let label_of = function
  | J.Obj fields ->
    let s k =
      match List.assoc_opt k fields with
      | Some (J.String v) -> Some (k ^ "=" ^ v)
      | Some (J.Int v) -> Some (k ^ "=" ^ string_of_int v)
      | _ -> None
    in
    let parts = List.filter_map s [ "label"; "group"; "groups"; "query"; "doc" ] in
    if parts = [] then None else Some (String.concat "," parts)
  | _ -> None

let rec flatten path acc j =
  match j with
  | J.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        let p = if path = "" then k else path ^ "." ^ k in
        match v with
        | J.Int n when interesting k -> (p, float_of_int n) :: acc
        | J.Float f when interesting k -> (p, f) :: acc
        | _ -> flatten p acc v)
      acc fields
  | J.List items ->
    let _, acc =
      List.fold_left
        (fun (i, acc) item ->
          let seg =
            match label_of item with
            | Some l -> Printf.sprintf "[%s]" l
            | None -> Printf.sprintf "[%d]" i
          in
          (i + 1, flatten (path ^ seg) acc item))
        (0, acc) items
    in
    acc
  | _ -> acc

let leaves j = List.rev (flatten "" [] j)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      match J.of_string (String.trim s) with
      | Ok j -> j
      | Error e ->
        Printf.eprintf "bench_diff: %s: %s\n" path e;
        exit 2)

(* The machine's core count shapes every server-side percentile (a
   1-core run serializes worker domains the paper's architecture
   expects to run in parallel), so comparing reports recorded at
   different [meta.cores] says nothing about the code between them. *)
let cores_of j =
  match Option.bind (J.member "meta" j) (J.member "cores") with
  | Some (J.Int n) -> Some n
  | _ -> None

let check_cores ~allow_core_mismatch ~quiet (a, base) (b, cand) =
  let show = function Some n -> string_of_int n | None -> "unrecorded" in
  let ca = cores_of base and cb = cores_of cand in
  if not quiet then
    Printf.printf "bench_diff: meta.cores %s=%s %s=%s\n" a (show ca) b
      (show cb);
  match (ca, cb) with
  | Some x, Some y when x <> y ->
    if allow_core_mismatch then
      Printf.printf
        "bench_diff: core counts differ (%d vs %d) — comparing anyway \
         (--allow-core-mismatch)\n"
        x y
    else begin
      Printf.eprintf
        "bench_diff: refusing to compare reports recorded on different core \
         counts (%s: %d, %s: %d); pass --allow-core-mismatch to override\n"
        a x b y;
      exit 2
    end
  | _ -> ()

type verdict = Ok_leaf | Improved | Regressed

let compare_reports ~threshold ~floor base cand =
  let bl = leaves base and cl = leaves cand in
  let rows =
    List.filter_map
      (fun (path, b) ->
        match List.assoc_opt path cl with
        | None -> None
        | Some c ->
          let verdict =
            if c > b *. (1. +. (threshold /. 100.)) && c -. b > floor then
              Regressed
            else if b > c *. (1. +. (threshold /. 100.)) && b -. c > floor
            then Improved
            else Ok_leaf
          in
          Some (path, b, c, verdict))
      bl
  in
  let only_base =
    List.filter (fun (p, _) -> not (List.mem_assoc p cl)) bl
  in
  let only_cand =
    List.filter (fun (p, _) -> not (List.mem_assoc p bl)) cl
  in
  (rows, List.length only_base, List.length only_cand)

let run ~threshold ~floor ~quiet ~allow_core_mismatch a b =
  let base = load a and cand = load b in
  check_cores ~allow_core_mismatch ~quiet (a, base) (b, cand);
  let rows, only_a, only_b = compare_reports ~threshold ~floor base cand in
  if rows = [] then begin
    Printf.eprintf
      "bench_diff: no comparable percentile leaves between %s and %s\n" a b;
    exit 2
  end;
  let regressions =
    List.filter (fun (_, _, _, v) -> v = Regressed) rows
  in
  if not quiet then begin
    Printf.printf "bench_diff: %s -> %s (threshold +%g%%, floor %gms)\n" a b
      threshold floor;
    List.iter
      (fun (path, bv, cv, verdict) ->
        let tag =
          match verdict with
          | Regressed -> "REGRESS"
          | Improved -> "better "
          | Ok_leaf -> "ok     "
        in
        let pct =
          if bv = 0. then 0. else (cv -. bv) /. bv *. 100.
        in
        Printf.printf "  %s %-50s %10.3f -> %10.3f  (%+.1f%%)\n" tag path bv
          cv pct)
      rows;
    if only_a > 0 then
      Printf.printf "  (%d leaves only in %s)\n" only_a a;
    if only_b > 0 then
      Printf.printf "  (%d leaves only in %s)\n" only_b b;
    Printf.printf "bench_diff: %d leaf(s) compared, %d regression(s)\n"
      (List.length rows)
      (List.length regressions)
  end;
  if regressions <> [] then exit 1

let self_test () =
  let parse s =
    match J.of_string s with Ok j -> j | Error e -> failwith e
  in
  let base =
    parse
      "{\"bench\":\"t\",\"cells\":[{\"group\":\"user\",\"query\":\"//a\",\
       \"replayed\":{\"p50_ms\":1.0,\"p95_ms\":2.0}}],\"ms\":{\"median\":\
       10.0,\"p95\":12.0}}"
  in
  let same = base in
  let worse =
    parse
      "{\"bench\":\"t\",\"cells\":[{\"group\":\"user\",\"query\":\"//a\",\
       \"replayed\":{\"p50_ms\":1.0,\"p95_ms\":9.0}}],\"ms\":{\"median\":\
       10.0,\"p95\":12.0}}"
  in
  let check what expect got =
    if expect <> got then failwith (Printf.sprintf "self-test: %s" what)
  in
  (* four percentile leaves, labeled paths *)
  let ls = leaves base in
  check "leaf count" 4 (List.length ls);
  check "labeled path" true
    (List.mem_assoc "cells[group=user,query=//a].replayed.p50_ms" ls);
  let verdicts ~threshold ~floor a b =
    let rows, _, _ = compare_reports ~threshold ~floor a b in
    List.filter (fun (_, _, _, v) -> v = Regressed) rows
  in
  check "identical reports never regress" 0
    (List.length (verdicts ~threshold:10. ~floor:0.05 base same));
  check "a 4.5x p95 regresses" 1
    (List.length (verdicts ~threshold:10. ~floor:0.05 base worse));
  check "the absolute floor silences tiny deltas" 0
    (List.length (verdicts ~threshold:10. ~floor:10. base worse));
  check "direction matters: an improvement is not a regression" 0
    (List.length (verdicts ~threshold:10. ~floor:0.05 worse base));
  let meta n = parse (Printf.sprintf "{\"meta\":{\"cores\":%d}}" n) in
  check "cores extracted" (Some 4) (cores_of (meta 4));
  check "cores absent on old reports" None (cores_of base);
  print_endline "bench_diff self-test: OK"

let usage () =
  prerr_endline
    "usage: bench_diff [--threshold PCT] [--floor MS] [--quiet] \
     [--allow-core-mismatch] BASE.json CANDIDATE.json\n\
    \       bench_diff --self-test";
  exit 2

let () =
  let threshold = ref 10. and floor = ref 0.05 and quiet = ref false in
  let allow_core_mismatch = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--self-test" :: _ -> self_test (); exit 0
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> threshold := f; parse rest
      | None -> usage ())
    | "--floor" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> floor := f; parse rest
      | None -> usage ())
    | "--quiet" :: rest -> quiet := true; parse rest
    | "--allow-core-mismatch" :: rest ->
      allow_core_mismatch := true;
      parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
      files := f :: !files;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ a; b ] ->
    run ~threshold:!threshold ~floor:!floor ~quiet:!quiet
      ~allow_core_mismatch:!allow_core_mismatch a b
  | _ -> usage ()
