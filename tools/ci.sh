#!/bin/sh
# The repo gate: build (warnings are errors, see the dune env stanza),
# run every test suite, then turn the static analyzers on the repo's
# own example policies.  `lint` exits 1 on any error-severity
# diagnostic; `analyze` does the same, so a policy drift that the
# semantic layer can prove wrong fails CI here.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

secview() { dune exec --no-build bin/secview_cli.exe -- "$@"; }
POL=examples/policies

echo "== lint example policies"
for spec in "$POL"/*.spec; do
  echo "-- lint $spec"
  secview lint --dtd "$POL/hospital.dtd" --spec "$spec"
done

echo "== analyze example policy fleet"
secview analyze --dtd "$POL/hospital.dtd" --fleet \
  --group nurse="$POL/nurse.spec" \
  --group nurse2="$POL/nurse2.spec" \
  --group junior="$POL/junior.spec"

# Capture -> replay cycle: record a workload over the example fleet,
# re-execute it, and require every answer to digest-match its capture.
echo "== capture -> replay smoke"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
secview gen --dtd "$POL/hospital.dtd" > "$TMP/doc.xml"
secview query --dtd "$POL/hospital.dtd" --spec "$POL/nurse.spec" \
  --doc "$TMP/doc.xml" --bind wardNo=6 --capture "$TMP/cap.jsonl" \
  '//patient/name' '//patient' '//patient/wardNo' > /dev/null
secview replay "$TMP/cap.jsonl" --dtd "$POL/hospital.dtd" \
  --spec "$POL/nurse.spec" --doc doc="$TMP/doc.xml" \
  --out "$TMP/replay.json" | grep -q ' 0 mismatch(es)'
echo "-- replay: 0 mismatches"

# Mixed read/write capture -> replay: a query, an admitted update, and
# a query over the updated document, accumulated into one capture
# (open_file appends), then replayed in captured order from the
# original document — the replayed write must rebuild the
# byte-identical version for the final query's digest to match.
echo "== mixed capture -> replay smoke"
printf 'write regular bill replace\nwrite trial bill replace\n' \
  > "$TMP/billing_rw.spec"
secview query --dtd "$POL/hospital.dtd" --spec "$TMP/billing_rw.spec" \
  --doc "$TMP/doc.xml" --capture "$TMP/mixed.jsonl" \
  '//patient//bill' > /dev/null
secview update --dtd "$POL/hospital.dtd" --spec "$TMP/billing_rw.spec" \
  --doc "$TMP/doc.xml" --capture "$TMP/mixed.jsonl" \
  --out "$TMP/doc2.xml" user \
  'replace //patient//bill with <bill>1</bill>' > /dev/null
secview query --dtd "$POL/hospital.dtd" --spec "$TMP/billing_rw.spec" \
  --doc "$TMP/doc2.xml" --capture "$TMP/mixed.jsonl" \
  '//patient//bill' > /dev/null
secview replay "$TMP/mixed.jsonl" --dtd "$POL/hospital.dtd" \
  --spec "$TMP/billing_rw.spec" --doc doc="$TMP/doc.xml" \
  | grep -q ' 0 mismatch(es)'
echo "-- mixed replay: 0 mismatches"

# Domain-parallel serving: a 2-domain server (real OCaml domains, one
# pipeline session each) must answer exactly what the single-threaded
# pipeline answers, and the workload captured through it must replay
# digest-clean against the live server.
echo "== 2-domain serve smoke"
secview serve --dtd "$POL/hospital.dtd" --spec "$POL/nurse.spec" \
  --doc doc="$TMP/doc.xml" --socket "$TMP/ci.sock" --domains 2 \
  --capture "$TMP/dcap.jsonl" 2> "$TMP/serve.log" &
SRV=$!
secview client --socket "$TMP/ci.sock" --wait 5 --group user \
  --bind wardNo=6 '//patient/name' '//patient/wardNo' '//patient' \
  > "$TMP/served.out"
secview query --dtd "$POL/hospital.dtd" --spec "$POL/nurse.spec" \
  --doc "$TMP/doc.xml" --bind wardNo=6 \
  '//patient/name' '//patient/wardNo' '//patient' > "$TMP/direct.out"
cmp "$TMP/served.out" "$TMP/direct.out"
echo "-- 2-domain answers match the direct pipeline"
secview replay "$TMP/dcap.jsonl" --socket "$TMP/ci.sock" \
  | grep -q ' 0 mismatch(es)'
echo "-- 2-domain capture -> replay: 0 mismatches"
secview client --socket "$TMP/ci.sock" --shutdown
wait $SRV

# Runtime health: a 2-domain server with the Runtime_events consumer
# on must expose per-domain gc_pause_seconds series on its HTTP
# scrape endpoint, answer byte-identically to the direct pipeline,
# and render the top dashboard's gc section.
echo "== runtime-events serve smoke"
secview serve --dtd "$POL/hospital.dtd" --spec "$POL/nurse.spec" \
  --doc doc="$TMP/doc.xml" --socket "$TMP/rt.sock" --domains 2 \
  --runtime-events --metrics-port 19384 2> "$TMP/rt.log" &
RSRV=$!
secview client --socket "$TMP/rt.sock" --wait 5 --group user \
  --bind wardNo=6 '//patient/name' '//patient/wardNo' '//patient' \
  > "$TMP/rt_served.out"
cmp "$TMP/rt_served.out" "$TMP/direct.out"
echo "-- runtime-events answers match the direct pipeline"
secview metrics --scrape 127.0.0.1:19384 > "$TMP/rt_scrape.txt"
DOMAINS_SEEN=$(grep -o '^secview_gc_pause_seconds_d[0-9]*' "$TMP/rt_scrape.txt" \
  | sort -u | wc -l)
if [ "$DOMAINS_SEEN" -lt 2 ]; then
  echo "runtime smoke: wanted gc_pause_seconds for >= 2 domains, saw $DOMAINS_SEEN" >&2
  exit 1
fi
echo "-- per-domain gc_pause_seconds series for $DOMAINS_SEEN domains"
secview top --socket "$TMP/rt.sock" --interval 0.2 --iterations 2 \
  | grep -q 'domain(s) live'
echo "-- top renders the gc section"
secview client --socket "$TMP/rt.sock" --shutdown
wait $RSRV

# The regression gate itself is gated: its self-test, then a diff of a
# report against itself (which must never regress).
echo "== bench_diff"
dune exec --no-build tools/bench_diff/main.exe -- --self-test
dune exec --no-build tools/bench_diff/main.exe -- --quiet \
  "$TMP/replay.json" "$TMP/replay.json"
echo "-- bench_diff: self-diff clean"

# The write path must not tax readers: BENCH_PR8.json's read-only pass
# is recorded at the same JSON paths as BENCH_PR7.json's, so this
# holds the read path across the update-subsystem PR.  The threshold
# is generous because the committed files are recorded on whatever
# machine ran each PR — this gate catches gross regressions, not
# scheduler noise.
if [ -f BENCH_PR7.json ] && [ -f BENCH_PR8.json ]; then
  dune exec --no-build tools/bench_diff/main.exe -- \
    --threshold 60 --floor 2 BENCH_PR7.json BENCH_PR8.json
  echo "-- bench_diff: read path held across PR 8"
fi

# Same gate across the domain-parallel PR: BENCH_PR9.json's
# single-domain read-only pass is recorded at the PR8 paths
# (recorder.off.*), so the Service/Session split plus the domain
# execution model must not tax a 1-domain server's read path.
if [ -f BENCH_PR8.json ] && [ -f BENCH_PR9.json ]; then
  dune exec --no-build tools/bench_diff/main.exe -- \
    --threshold 60 --floor 2 BENCH_PR8.json BENCH_PR9.json
  echo "-- bench_diff: read path held across PR 9"
fi

echo "== ci.sh: all green"
