#!/bin/sh
# The repo gate: build (warnings are errors, see the dune env stanza),
# run every test suite, then turn the static analyzers on the repo's
# own example policies.  `lint` exits 1 on any error-severity
# diagnostic; `analyze` does the same, so a policy drift that the
# semantic layer can prove wrong fails CI here.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

secview() { dune exec --no-build bin/secview_cli.exe -- "$@"; }
POL=examples/policies

echo "== lint example policies"
for spec in "$POL"/*.spec; do
  echo "-- lint $spec"
  secview lint --dtd "$POL/hospital.dtd" --spec "$spec"
done

echo "== analyze example policy fleet"
secview analyze --dtd "$POL/hospital.dtd" --fleet \
  --group nurse="$POL/nurse.spec" \
  --group nurse2="$POL/nurse2.spec" \
  --group junior="$POL/junior.spec"

echo "== ci.sh: all green"
