#!/bin/sh
# The repo gate: build (warnings are errors, see the dune env stanza),
# run every test suite, then turn the static analyzers on the repo's
# own example policies.  `lint` exits 1 on any error-severity
# diagnostic; `analyze` does the same, so a policy drift that the
# semantic layer can prove wrong fails CI here.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

secview() { dune exec --no-build bin/secview_cli.exe -- "$@"; }
POL=examples/policies

echo "== lint example policies"
for spec in "$POL"/*.spec; do
  echo "-- lint $spec"
  secview lint --dtd "$POL/hospital.dtd" --spec "$spec"
done

echo "== analyze example policy fleet"
secview analyze --dtd "$POL/hospital.dtd" --fleet \
  --group nurse="$POL/nurse.spec" \
  --group nurse2="$POL/nurse2.spec" \
  --group junior="$POL/junior.spec"

# Capture -> replay cycle: record a workload over the example fleet,
# re-execute it, and require every answer to digest-match its capture.
echo "== capture -> replay smoke"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
secview gen --dtd "$POL/hospital.dtd" > "$TMP/doc.xml"
secview query --dtd "$POL/hospital.dtd" --spec "$POL/nurse.spec" \
  --doc "$TMP/doc.xml" --bind wardNo=6 --capture "$TMP/cap.jsonl" \
  '//patient/name' '//patient' '//patient/wardNo' > /dev/null
secview replay "$TMP/cap.jsonl" --dtd "$POL/hospital.dtd" \
  --spec "$POL/nurse.spec" --doc doc="$TMP/doc.xml" \
  --out "$TMP/replay.json" | grep -q ' 0 mismatch(es)'
echo "-- replay: 0 mismatches"

# The regression gate itself is gated: its self-test, then a diff of a
# report against itself (which must never regress).
echo "== bench_diff"
dune exec --no-build tools/bench_diff/main.exe -- --self-test
dune exec --no-build tools/bench_diff/main.exe -- --quiet \
  "$TMP/replay.json" "$TMP/replay.json"
echo "-- bench_diff: self-diff clean"

echo "== ci.sh: all green"
